"""Differential conformance suite: pins the fuzz tool's grid as tier-1 tests.

``tools/fuzz_differential.py`` is the replayable generator/checker; this
module drives it from pytest so the conformance grid — {python, numpy} ×
{unsharded, sharded 2/7/cpu} × every registered discovery algorithm — runs
on every tier-1 invocation with fixed seeds plus explicit adversarial
fixtures the random generator is not guaranteed to hit (empty relation,
single row, fewer rows than shards, pure constants, all-distinct, heavy
skew, nulls).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import fuzz_differential  # noqa: E402

from repro.discovery.registry import available_algorithms  # noqa: E402
from repro.relational.backend import numpy_available  # noqa: E402

FIXED_SEEDS = (0, 1, 2, 3, 4, 5)


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_fixed_seeds_conform(seed):
    assert fuzz_differential.check_seed(seed) == []


def test_generator_is_seed_replayable():
    for seed in FIXED_SEEDS:
        assert fuzz_differential.generate_case(seed) == fuzz_differential.generate_case(seed)
    cases = {
        fuzz_differential.generate_case(seed)[:2] == fuzz_differential.generate_case(0)[:2]
        for seed in FIXED_SEEDS
    }
    assert False in cases, "distinct seeds should not all collapse to one case"


ADVERSARIAL_CASES = {
    "empty": (("a", "b"), []),
    "single_row": (("a", "b"), [("x", 1)]),
    "fewer_rows_than_shards": (("a", "b"), [("x", 1), ("x", 2), ("y", 1)]),
    "constants": (("a", "b", "c"), [("k", "k", "k")] * 12),
    "all_distinct": (("a", "b"), [(f"v{i}", i) for i in range(20)]),
    "skew": (
        ("a", "b", "c"),
        [("hot", i % 2, "x") for i in range(25)] + [(f"cold{i}", i, "y") for i in range(5)],
    ),
    "nulls": (
        ("a", "b"),
        [(None, 1), ("x", None), (None, 1), ("x", 2), (None, None), ("y", 1)],
    ),
    "blocks_across_boundaries": (
        ("a", "b"),
        [(f"b{i // 7}", i % 3) for i in range(42)],
    ),
}


@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
def test_adversarial_fixtures_conform(case):
    names, rows = ADVERSARIAL_CASES[case]
    assert fuzz_differential.check_case(case, names, rows) == []


def test_grid_covers_required_legs():
    """The grid must span both backends and shard counts {1, 2, 7, cpu}."""
    legs = dict(fuzz_differential.conformance_legs())
    assert legs["python"]["backend"] == "python"
    # The python leg deliberately forces shard knobs: they must be inert there.
    assert legs["python"]["shard_count"] > 1
    if not numpy_available():
        pytest.skip("numpy not installed")
    assert legs["numpy-unsharded"]["shard_count"] == 1
    cpu = os.cpu_count() or 1
    for count in {2, 7, cpu}:
        sharded = legs[f"numpy-sharded-{count}"]
        assert sharded["shard_count"] == count
        assert sharded["shard_min_rows"] == 0


def test_grid_covers_all_registered_algorithms():
    names, rows = ADVERSARIAL_CASES["fewer_rows_than_shards"]
    legs = fuzz_differential.conformance_legs()
    observed = fuzz_differential._observe_leg(
        names, rows, legs[0][1], list(available_algorithms())
    )
    assert set(observed["runs"]) == set(available_algorithms())


def test_cli_replays_single_seed(capsys):
    assert fuzz_differential.main(["--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "seed 3: conforms" in out
