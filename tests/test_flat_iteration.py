"""Flat positions/offsets iteration in FastFDs and HyFD: pinned equivalence.

Both algorithms now walk ``StrippedPartition.flat_lists()`` directly instead
of materialising per-group python lists.  These tests pin the rewritten
inner loops against straightforward group-materialising references (the old
formulation) on both backends, so the iteration change can never silently
alter the agree sets either algorithm derives.
"""

from itertools import combinations

import pytest

from repro.discovery.fastfds import FastFDs
from repro.discovery.hyfd import HyFD
from repro.discovery.base import DiscoveryStats
from repro.relational.backend import numpy_available
from repro.relational.partition import StrippedPartition, make_partition_cache
from repro.relational.relation import Relation
from repro.session import Session

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy fast path not importable")

BACKENDS = ["python", pytest.param("numpy", marks=requires_numpy)]

CASES = {
    "mixed": [(i % 4, i % 3, (i * 5) % 7) for i in range(40)],
    "constant": [("k", "k", 0)] * 15,
    "distinct": [(i, f"v{i}", i % 2) for i in range(20)],
    "skew": [("hot" if i % 10 else f"c{i}", i % 3, i % 2) for i in range(50)],
    "empty": [],
    "single": [(1, 2, 3)],
}

ATTRS = ("a", "b", "c")


def _difference_sets_reference(relation, names, bit_of, full_mask):
    """The pre-flat formulation: materialise groups, enumerate combinations."""
    n_rows = len(relation)
    agree = {}
    for name in names:
        bit = bit_of[name]
        partition = StrippedPartition.from_column(relation, name)
        for group in partition.groups:
            for first, second in combinations(group, 2):
                key = first * n_rows + second
                agree[key] = agree.get(key, 0) | bit
    difference_sets = {full_mask ^ mask for mask in agree.values() if mask != full_mask}
    if len(agree) < n_rows * (n_rows - 1) // 2:
        difference_sets.add(full_mask)
    return difference_sets


def _sample_agree_sets_reference(relation, names, window, cache):
    """The pre-flat formulation: window over materialised group lists."""
    agree_sets = set()
    codes = {name: relation.column_codes(name)[0] for name in names}
    full = frozenset(names)
    for name in names:
        for group in cache.get([name]).groups:
            for offset in range(1, min(window, len(group))):
                for i in range(len(group) - offset):
                    first, second = group[i], group[i + offset]
                    agreeing = frozenset(
                        attr for attr in names if codes[attr][first] == codes[attr][second]
                    )
                    if agreeing != full:
                        agree_sets.add(agreeing)
    return agree_sets


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(CASES))
def test_fastfds_difference_sets_match_group_reference(backend, case):
    with Session(backend=backend):
        relation = Relation("r", ATTRS, CASES[case])
        names = tuple(sorted(ATTRS))
        bit_of = {name: 1 << i for i, name in enumerate(names)}
        full_mask = (1 << len(names)) - 1
        algorithm = FastFDs()
        observed = algorithm._difference_sets(relation, names, bit_of, full_mask, DiscoveryStats())
        expected = _difference_sets_reference(relation, names, bit_of, full_mask)
        assert observed == expected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(CASES))
def test_hyfd_sampling_matches_group_reference(backend, case):
    with Session(backend=backend):
        relation = Relation("r", ATTRS, CASES[case])
        names = tuple(sorted(ATTRS))
        algorithm = HyFD(window=3)
        observed = algorithm._sample_agree_sets(
            relation, names, DiscoveryStats(), make_partition_cache(relation)
        )
        expected = _sample_agree_sets_reference(
            relation, names, algorithm.window, make_partition_cache(relation)
        )
        assert observed == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_fastfds_pair_count_stat_is_preserved(backend):
    # The flat rewrite must keep counting distinct agreeing pairs, not visits.
    with Session(backend=backend):
        relation = Relation("r", ATTRS, CASES["mixed"])
        names = tuple(sorted(ATTRS))
        bit_of = {name: 1 << i for i, name in enumerate(names)}
        stats = DiscoveryStats()
        FastFDs()._difference_sets(relation, names, bit_of, (1 << 3) - 1, stats)
        reference = _difference_sets_reference(relation, names, bit_of, (1 << 3) - 1)
        assert stats.sampled_pairs > 0
        assert reference  # the case is non-degenerate
