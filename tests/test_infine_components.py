"""Tests for the individual InFine steps (Algorithms 2-5) and provenance containers."""

import pytest

from repro.fd import fd
from repro.infine import (
    FDType,
    ProvenanceSet,
    ProvenanceTriple,
    StepTimings,
    infer_join_fds,
    join_upstaged_fds,
    mine_join_fds,
    mine_new_fds,
    selection_fds,
)
from repro.relational.algebra import JoinKind
from repro.relational.predicates import eq, ne
from repro.relational.relation import Relation


class TestProvenance:
    def test_triple_step_mapping(self):
        assert ProvenanceTriple(fd("a", "b"), FDType.BASE, "R").step == "base"
        assert ProvenanceTriple(fd("a", "b"), FDType.UPSTAGED_LEFT, "V").step == "upstageFDs"
        assert ProvenanceTriple(fd("a", "b"), FDType.INFERRED, "V").step == "inferFDs"
        assert ProvenanceTriple(fd("a", "b"), FDType.JOIN, "V").step == "mineFDs"

    def test_requires_data_access_flag(self):
        assert not FDType.BASE.requires_data_access
        assert not FDType.INFERRED.requires_data_access
        assert FDType.JOIN.requires_data_access
        assert FDType.UPSTAGED_SELECTION.requires_data_access

    def test_first_provenance_wins(self):
        collection = ProvenanceSet()
        assert collection.add(ProvenanceTriple(fd("a", "b"), FDType.BASE, "R"))
        assert not collection.add(ProvenanceTriple(fd("a", "b"), FDType.JOIN, "V"))
        assert collection.triple_for(fd("a", "b")).fd_type is FDType.BASE

    def test_merge_and_counts(self):
        first = ProvenanceSet([ProvenanceTriple(fd("a", "b"), FDType.BASE, "R")])
        second = ProvenanceSet([ProvenanceTriple(fd("c", "d"), FDType.JOIN, "V")])
        merged = first.merge(second)
        assert len(merged) == 2
        counts = merged.count_by_type()
        assert counts[FDType.BASE] == 1 and counts[FDType.JOIN] == 1

    def test_by_type_by_step_restrict(self):
        collection = ProvenanceSet([
            ProvenanceTriple(fd("a", "b"), FDType.BASE, "R"),
            ProvenanceTriple(fd("x", "y"), FDType.INFERRED, "V"),
        ])
        assert len(collection.by_type(FDType.BASE)) == 1
        assert len(collection.by_step("inferFDs")) == 1
        assert collection.restrict_to(["a", "b"]).fds().as_list() == [fd("a", "b")]

    def test_to_records(self):
        collection = ProvenanceSet([ProvenanceTriple(fd("a", "b"), FDType.BASE, "R")])
        record = collection.to_records()[0]
        assert record["fd"] == "a -> b"
        assert record["type"] == "base"
        assert record["subquery"] == "R"

    def test_str_rendering(self):
        triple = ProvenanceTriple(fd("a", "b"), FDType.UPSTAGED_LEFT, "L JOIN R")
        assert "upstaged left" in str(triple)


class TestStepTimings:
    def test_accumulation_and_total(self):
        timings = StepTimings()
        timings.add("io", 1.0)
        timings.add("upstageFDs", 0.5)
        timings.add("selectionFDs", 0.5)
        timings.add("mineFDs", 2.0)
        assert timings.total == pytest.approx(4.0)
        assert timings.view_pipeline == pytest.approx(4.0)
        assert timings.upstage == pytest.approx(1.0)

    def test_base_excluded_from_pipeline(self):
        timings = StepTimings()
        timings.add("base", 5.0)
        timings.add("mine", 1.0)
        assert timings.view_pipeline == pytest.approx(1.0)
        assert timings.total == pytest.approx(6.0)

    def test_measure_context_manager(self):
        timings = StepTimings()
        with timings.measure("inferFDs"):
            pass
        assert timings.infer >= 0.0

    def test_unknown_step_goes_to_extra(self):
        timings = StepTimings()
        timings.add("custom", 1.0)
        assert timings.extra["custom"] == 1.0
        assert "custom" in timings.as_dict()

    def test_merged_with(self):
        first, second = StepTimings(io=1.0), StepTimings(io=2.0, mine=1.0)
        merged = first.merged_with(second)
        assert merged.io == 3.0 and merged.mine == 1.0


class TestMineNewFDs:
    def test_new_fds_exclude_known(self):
        reduced = Relation("r", ("a", "b"), [(1, "x"), (2, "y")])
        new, checked = mine_new_fds(reduced, ("a", "b"), [fd("a", "b")])
        assert fd("a", "b") not in new
        assert fd("b", "a") in new
        assert checked > 0

    def test_unknown_attributes_are_ignored(self):
        reduced = Relation("r", ("a", "b"), [(1, "x")])
        new, _ = mine_new_fds(reduced, ("a", "b", "zz"), [])
        assert all(d.attributes <= {"a", "b"} for d in new)

    def test_no_usable_attributes(self):
        reduced = Relation("r", ("a",), [(1,)])
        assert mine_new_fds(reduced, ("zz",), []) == ([], 0)


class TestSelectionFDs:
    def test_upstages_fd_when_violators_filtered(self):
        instance = Relation("r", ("rid", "flag", "code"),
                            [(1, 0, "a"), (2, 0, "a"), (3, 1, "b"), (4, 1, "c")])
        known = [fd("rid", "flag"), fd("rid", "code")]
        outcome = selection_fds(instance, ne("code", "c"), known, ("rid", "flag", "code"), "sel")
        assert outcome.filtered
        assert fd("flag", "code") in {t.dependency for t in outcome.triples}
        assert all(t.fd_type is FDType.UPSTAGED_SELECTION for t in outcome.triples)
        assert all(t.subquery == "sel" for t in outcome.triples)

    def test_no_mining_when_nothing_filtered(self):
        instance = Relation("r", ("a", "b"), [(1, 2), (3, 4)])
        outcome = selection_fds(instance, ne("a", 99), [], ("a", "b"), "sel")
        assert not outcome.filtered
        assert outcome.triples == []
        assert outcome.candidates_checked == 0

    def test_selected_instance_returned(self):
        instance = Relation("r", ("a", "b"), [(1, 2), (3, 4)])
        outcome = selection_fds(instance, eq("a", 1), [], ("a", "b"), "sel")
        assert len(outcome.instance) == 1


class TestJoinUpstagedFDs:
    @pytest.fixture()
    def left(self):
        # flag -> code violated only by the dangling row k=5.
        return Relation("L", ("k", "flag", "code"),
                        [(1, 0, "a"), (2, 0, "a"), (3, 1, "b"), (4, 1, "b"), (5, 1, "z")])

    @pytest.fixture()
    def right(self):
        return Relation("R", ("k", "extra"), [(1, "p"), (2, "q"), (3, "p"), (4, "q")])

    def test_inner_join_upstages_left_afd(self, left, right):
        outcome = join_upstaged_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                    [fd("k", "flag"), fd("k", "code")], [fd("k", "extra")],
                                    ("k", "flag", "code", "extra"), "J")
        upstaged = {t.dependency for t in outcome.triples if t.fd_type is FDType.UPSTAGED_LEFT}
        assert fd("flag", "code") in upstaged
        assert outcome.left_was_reduced
        assert not outcome.right_was_reduced  # every right key joins

    def test_left_outer_join_does_not_upstage_left(self, left, right):
        outcome = join_upstaged_fds(left, right, ["k"], ["k"], JoinKind.LEFT_OUTER,
                                    [], [], ("k", "flag", "code", "extra"), "J")
        assert not outcome.left_was_reduced

    def test_full_outer_join_upstages_nothing(self, left, right):
        outcome = join_upstaged_fds(left, right, ["k"], ["k"], JoinKind.FULL_OUTER,
                                    [], [], ("k", "flag", "code", "extra"), "J")
        assert outcome.triples == []

    def test_no_upstage_when_no_tuples_dropped(self, right):
        complete = Relation("L", ("k", "v"), [(1, "a"), (2, "b"), (3, "c"), (4, "d")])
        outcome = join_upstaged_fds(complete, right, ["k"], ["k"], JoinKind.INNER,
                                    [], [], ("k", "v", "extra"), "J")
        assert [t for t in outcome.triples if t.fd_type is FDType.UPSTAGED_LEFT] == []


class TestInferFDs:
    def test_transitive_inference_through_join(self):
        left = Relation("L", ("k", "city"), [(1, "lyon"), (2, "paris")])
        right = Relation("R", ("k", "country"), [(1, "fr"), (2, "fr")])
        outcome = infer_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                 [fd("city", "k")], [fd("k", "country")],
                                 [fd("city", "k"), fd("k", "country")], "J")
        assert fd("city", "country") in outcome.fds
        assert all(t.fd_type is FDType.INFERRED for t in outcome.triples)

    def test_refinement_minimises_lhs(self):
        # (a, b) -> k logically, but on the data `a` alone determines k.
        left = Relation("L", ("k", "a", "b"), [(1, "x", 1), (2, "y", 1), (3, "z", 2)])
        right = Relation("R", ("k", "c"), [(1, "p"), (2, "q"), (3, "r")])
        outcome = infer_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                 [fd(("a", "b"), "k")], [fd("k", "c")],
                                 [fd(("a", "b"), "k"), fd("k", "c")], "J")
        assert fd("a", "c") in outcome.fds
        assert fd(("a", "b"), "c") not in outcome.fds

    def test_refinement_can_be_disabled(self):
        left = Relation("L", ("k", "a", "b"), [(1, "x", 1), (2, "y", 1), (3, "z", 2)])
        right = Relation("R", ("k", "c"), [(1, "p"), (2, "q"), (3, "r")])
        outcome = infer_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                 [fd(("a", "b"), "k")], [fd("k", "c")],
                                 [fd(("a", "b"), "k"), fd("k", "c")], "J",
                                 refine_with_data=False)
        assert fd(("a", "b"), "c") in outcome.fds

    def test_inferred_fds_implied_by_known_are_dropped(self):
        left = Relation("L", ("k", "a"), [(1, "x")])
        right = Relation("R", ("k", "b"), [(1, "y")])
        known = [fd("a", "k"), fd("k", "b"), fd("a", "b")]
        outcome = infer_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                 [fd("a", "k")], [fd("k", "b")], known, "J")
        assert fd("a", "b") not in outcome.fds

    def test_join_attribute_equality_fds_for_different_names(self):
        left = Relation("L", ("lk", "a"), [(1, "x"), (2, "y")])
        right = Relation("R", ("rk", "b"), [(1, "p"), (2, "q")])
        outcome = infer_join_fds(left, right, ["lk"], ["rk"], JoinKind.INNER,
                                 [], [], [], "J")
        assert fd("lk", "rk") in outcome.fds
        assert fd("rk", "lk") in outcome.fds


class TestMineJoinFDs:
    def test_discovers_cross_side_join_fd(self):
        # gender+plan -> insurance only holds on the joined data.
        left = Relation("L", ("k", "gender"), [(1, "F"), (2, "F"), (3, "M"), (4, "M")])
        right = Relation("R", ("k", "plan", "insurance"),
                         [(1, "a", "medicare"), (2, "b", "private"),
                          (3, "a", "private"), (4, "b", "selfpay")])
        left_fds = [fd("k", "gender")]
        right_fds = [fd("k", "plan"), fd("k", "insurance"), fd(("k", "plan"), "insurance")]
        outcome = mine_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                left_fds, right_fds, left_fds + right_fds,
                                ("k", "gender", "plan", "insurance"), "J")
        assert fd(("gender", "plan"), "insurance") in outcome.fds
        assert outcome.join_materialised
        assert outcome.candidates_validated > 0

    def test_semi_join_produces_nothing(self):
        left = Relation("L", ("k", "a"), [(1, "x")])
        right = Relation("R", ("k", "b"), [(1, "y")])
        outcome = mine_join_fds(left, right, ["k"], ["k"], JoinKind.LEFT_SEMI,
                                [], [], [], ("k", "a"), "J")
        assert outcome.fds == []
        assert not outcome.join_materialised

    def test_no_candidates_means_no_join_materialisation(self):
        # Right side has only the join attribute: no cross FDs are possible.
        left = Relation("L", ("k", "a"), [(1, "x"), (2, "y")])
        right = Relation("R", ("k",), [(1,), (2,)])
        outcome = mine_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                [fd("a", "k"), fd("k", "a")], [], [fd("a", "k"), fd("k", "a")],
                                ("k", "a"), "J")
        assert not outcome.join_materialised
        assert outcome.fds == []

    def test_dominated_candidates_are_not_reported(self):
        left = Relation("L", ("k", "a"), [(1, "x"), (2, "y")])
        right = Relation("R", ("k", "b"), [(1, "p"), (2, "q")])
        known = [fd("k", "a"), fd("a", "k"), fd("k", "b"), fd("b", "k")]
        outcome = mine_join_fds(left, right, ["k"], ["k"], JoinKind.INNER,
                                [fd("k", "a"), fd("a", "k")], [fd("k", "b"), fd("b", "k")],
                                known, ("k", "a", "b"), "J")
        for dependency in outcome.fds:
            assert not any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs
                for other in known
            )

    def test_theorem4_toggle_gives_same_fds(self):
        left = Relation("L", ("k", "g"), [(1, "F"), (2, "M"), (3, "F"), (4, "M")])
        right = Relation("R", ("k", "p", "i"),
                         [(1, "a", "x"), (2, "b", "y"), (3, "a", "y"), (4, "b", "x")])
        args = (left, right, ["k"], ["k"], JoinKind.INNER,
                [fd("k", "g")], [fd("k", "p"), fd("k", "i")],
                [fd("k", "g"), fd("k", "p"), fd("k", "i")], ("k", "g", "p", "i"), "J")
        with_pruning = mine_join_fds(*args, use_theorem4=True)
        without_pruning = mine_join_fds(*args, use_theorem4=False)
        assert set(with_pruning.fds) == set(without_pruning.fds)
        assert with_pruning.candidates_validated <= without_pruning.candidates_validated
