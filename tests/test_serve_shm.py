"""Integration tests: the shm data plane + M:N pool under the serving stack.

The headline pins:

* **byte parity** — a job served through shm-attached process workers
  produces the identical artefact fingerprint as the thread executor and a
  bare session, on both the numpy and the pure-python engine backends, and
  on the wire-fallback leg (shm faulted off);
* **serialise-once** — a retried job ships the exact payload bytes of its
  first attempt (``PreparedTask.serialisations == 1`` across attempts);
* **lifecycle hygiene** — kill storms reconcile segment refcounts, session
  eviction never unlinks an in-flight segment, and ``Server.close()``
  leaves zero ``/dev/shm`` segments and zero worker processes.
"""

from __future__ import annotations

import glob
import json
import os
import time
from functools import partial

import pytest

from repro.serve import (
    DONE,
    FAILED,
    FAILURE_INFRA,
    FaultPlan,
    JobQueue,
    PreparedTask,
    ProcessExecutor,
    Server,
    SessionPool,
    execute_payload,
    relation_to_payload,
)
from repro.shm import plane_available
from tests.test_serve_executor import WAIT, make_relation

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(not plane_available(), reason="host lacks shared memory or numpy"),
]


def leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/repro_*") + glob.glob("/dev/shm/psm_*")


def ref_payload(tenant: str, ref: str, overrides: dict | None = None) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": tenant,
        "kind": "validate",
        "relation_ref": ref,
        "params": {"fds": ["a -> b", "c -> d"]},
        "overrides": overrides or {},
    }


class TestByteParity:
    @pytest.mark.parametrize("overrides", [{}, {"backend": "python"}])
    def test_shm_thread_and_bare_session_agree(self, tmp_path, overrides):
        relation = make_relation(n_rows=90)
        registry = str(tmp_path / "registry")
        fingerprints = {}
        shm_jobs = None
        for executor in ("process", "thread"):
            with Server(workers=2, executor=executor, registry=registry) as server:
                ref = server.put_relation(relation)["hash"]
                payload = ref_payload("acme", ref, overrides)
                ticket = server.submit(payload)
                result = server.result(ticket.job_id, timeout=WAIT)
                fingerprints[executor] = result.artifact_fingerprint()
                if executor == "process":
                    shm_jobs = server.stats()["executor"]["shm_jobs"]
        assert shm_jobs == 1  # the process leg really used the segment
        inline = dict(payload)
        inline.pop("relation_ref")
        inline["relation"] = relation_to_payload(relation)
        bare = execute_payload(SessionPool(), inline)
        assert fingerprints["process"] == fingerprints["thread"]
        assert fingerprints["process"] == bare.artifact_fingerprint()

    def test_wire_fallback_leg_agrees(self, tmp_path):
        # Every shm.attach faulted: jobs fall back to the wire, artefacts
        # must not change.  (This is the leg CI exercises explicitly.)
        relation = make_relation(n_rows=90)
        registry = str(tmp_path / "registry")
        with Server(
            workers=1,
            executor="process",
            registry=registry,
            faults="seed=5;shm.attach:error:p=1.0",
        ) as server:
            ref = server.put_relation(relation)["hash"]
            ticket = server.submit(ref_payload("acme", ref))
            result = server.result(ticket.job_id, timeout=WAIT)
            stats = server.stats()
            assert stats["executor"]["shm_jobs"] == 0
            assert stats["executor"]["wire_jobs"] == 1
            assert stats["shm"]["attach_faults"] == 1
            faulted = result.artifact_fingerprint()
        with Server(workers=1, executor="thread", registry=registry) as server:
            ticket = server.submit(ref_payload("acme", ref))
            assert server.result(ticket.job_id, timeout=WAIT).artifact_fingerprint() == faulted

    def test_shm_disabled_still_serves(self, tmp_path):
        with Server(
            workers=1, executor="process", registry=str(tmp_path / "r"), shm_bytes=0
        ) as server:
            ref = server.put_relation(make_relation())["hash"]
            ticket = server.submit(ref_payload("acme", ref))
            server.result(ticket.job_id, timeout=WAIT)
            stats = server.stats()
            assert stats["shm"] == {"enabled": False}
            assert stats["executor"]["wire_jobs"] == 1


class TestSerialiseOnce:
    def test_retries_reuse_the_submitted_bytes(self):
        # Two kills then success: three attempts, one serialisation.
        plan = FaultPlan.from_spec("seed=3;process.kill:kill:p=1.0:times=2")
        executor = ProcessExecutor(faults=plan, warmup=False)
        queue = JobQueue(workers=1, executor=executor, max_attempts=4, faults=plan)
        try:
            pool = SessionPool()
            inline = {
                "schema": "repro/job-request-v1",
                "tenant": "acme",
                "kind": "validate",
                "relation": relation_to_payload(make_relation()),
                "params": {"fds": ["a -> b"]},
                "overrides": {},
            }
            task = PreparedTask(inline)
            job = queue.submit("acme", task)
            assert job.wait(WAIT)
            assert job.status == DONE
            assert job.attempts == 3
            assert task.serialisations == 1  # attempt 2 and 3 reused the bytes
            assert job.result.artifact_fingerprint() == execute_payload(
                pool, inline
            ).artifact_fingerprint()
        finally:
            queue.close()


class TestPoolShape:
    def test_fewer_processes_than_workers_shares_the_pool(self):
        executor = ProcessExecutor(processes=1, warmup=False)
        queue = JobQueue(workers=2, executor=executor)
        try:
            jobs = [queue.submit("t", partial(os.getpid)) for _ in range(4)]
            for job in jobs:
                assert job.wait(WAIT) and job.status == DONE
            pids = {job.result for job in jobs}
            assert len(pids) == 1  # both queue threads fed the single worker
            stats = executor.stats()
            assert stats["workers"] == 1
            assert stats["queue_threads"] == 2
            assert stats["spawned"] == 1
        finally:
            queue.close()

    def test_worker_recycling_after_job_quota(self):
        executor = ProcessExecutor(max_jobs_per_worker=1, warmup=False)
        queue = JobQueue(workers=1, executor=executor)
        try:
            pids = []
            for _ in range(3):
                job = queue.submit("t", partial(os.getpid))
                assert job.wait(WAIT) and job.status == DONE
                pids.append(job.result)
            assert len(set(pids)) == 3  # a fresh worker process per job
            stats = executor.stats()
            assert stats["recycled"] == 3
            assert stats["respawns"] == 0  # recycling is not a crash
            assert stats["spawned"] == 3
        finally:
            queue.close()
        assert executor.stats()["alive"] == 0

    def test_recycling_disabled_by_default(self):
        executor = ProcessExecutor(warmup=False)
        queue = JobQueue(workers=1, executor=executor)
        try:
            pids = set()
            for _ in range(3):
                job = queue.submit("t", partial(os.getpid))
                assert job.wait(WAIT) and job.status == DONE
                pids.add(job.result)
            assert len(pids) == 1
            assert executor.stats()["recycled"] == 0
        finally:
            queue.close()


class TestLifecycleHygiene:
    def test_session_eviction_leaves_inflight_segment_alone(self, tmp_path):
        # A shm-backed job is mid-flight (lease held, worker attached) while
        # the parent's SessionPool LRU-evicts; the segment must survive until
        # the job finishes, and close() must leave /dev/shm clean.
        relation = make_relation(n_rows=90)
        with Server(
            workers=1,
            executor="process",
            registry=str(tmp_path / "registry"),
            max_sessions=1,
            faults="seed=9;process.recv:delay:ms=400:times=1",
        ) as server:
            ref = server.put_relation(relation)["hash"]
            ticket = server.submit(ref_payload("acme", ref))
            plane = server.executor.plane
            deadline = time.monotonic() + WAIT
            while plane.refcounts().get(ref, 0) == 0:  # lease taken = in flight
                assert time.monotonic() < deadline, "job never leased the segment"
                time.sleep(0.005)
            segment = plane.segment_names()[0]
            # LRU-evict the tenant's parent-side session mid-flight.
            server.pool.get("other-tenant")
            assert server.pool.peek("acme") is None  # evicted (max_sessions=1)
            assert os.path.exists(f"/dev/shm/{segment}")  # segment unharmed
            result = server.result(ticket.job_id, timeout=WAIT)
            assert result.payload["provenance"]["relation_hash"] == ref
            assert plane.refcounts()[ref] == 0  # lease returned
        assert leaked_segments() == []  # close() unlinked everything

    def test_kill_storm_reconciles_refcounts_and_leaks_nothing(self, tmp_path):
        relation = make_relation(n_rows=60)
        server = Server(
            workers=2,
            executor="process",
            registry=str(tmp_path / "registry"),
            max_attempts=4,
            restart_budget=100,
            faults="seed=11;process.kill:kill:p=0.4",
        )
        ref = server.put_relation(relation)["hash"]
        tickets = [server.submit(ref_payload(f"tenant-{i % 3}", ref)) for i in range(9)]
        for ticket in tickets:
            job = server.queue.get(ticket.job_id)
            assert job.wait(WAIT)
            if job.status == FAILED:  # retries exhausted under the storm
                assert job.failure_class == FAILURE_INFRA
            else:
                assert job.status == DONE
        plane = server.executor.plane
        assert set(plane.refcounts().values()) <= {0}  # every lease reconciled
        executor = server.executor
        server.close()
        assert executor.stats()["alive"] == 0  # no leaked worker processes
        assert leaked_segments() == []  # no leaked segments

    def test_evicted_segment_mid_queue_falls_back_to_wire(self):
        # The segment is published at submit time but evicted before the job
        # executes: the lease misses and the job completes over the wire.
        from repro.shm import SharedRelationPlane, encode_segment

        a, b = make_relation("a", n_rows=90), make_relation("b", n_rows=90, salt=1)
        _, _, size = encode_segment(a)
        plane = SharedRelationPlane(budget_bytes=int(size * 1.5))
        executor = ProcessExecutor(warmup=False, plane=plane)
        queue = JobQueue(workers=1, executor=executor)
        try:
            hash_a = plane.publish(a)
            assert plane.publish(b) is not None  # evicts a before "its" job runs
            inline = {
                "schema": "repro/job-request-v1",
                "tenant": "acme",
                "kind": "validate",
                "relation": relation_to_payload(a),
                "params": {"fds": ["a -> b"]},
                "overrides": {},
            }
            job = queue.submit("acme", PreparedTask(inline, shm_hash=hash_a))
            assert job.wait(WAIT) and job.status == DONE
            stats = executor.stats()
            assert stats["wire_jobs"] == 1 and stats["shm_jobs"] == 0
            assert plane.stats()["lease_misses"] == 1
        finally:
            queue.close()
        assert leaked_segments() == []


class TestStatsSurface:
    def test_stats_exposes_shm_and_pool_blocks(self, tmp_path):
        with Server(
            workers=2,
            executor="process",
            registry=str(tmp_path / "registry"),
            processes=1,
            max_jobs_per_worker=7,
        ) as server:
            ref = server.put_relation(make_relation())["hash"]
            ticket = server.submit(ref_payload("acme", ref))
            server.result(ticket.job_id, timeout=WAIT)
            stats = server.stats()
            shm = stats["shm"]
            assert shm["enabled"] is True
            assert shm["published"] == 1 and shm["leases"] == 1
            assert shm["segments"] == 1 and shm["bytes"] > 0
            executor = stats["executor"]
            assert executor["workers"] == 1  # --processes sized the pool
            assert executor["queue_threads"] == 2
            assert executor["max_jobs_per_worker"] == 7
            assert executor["shm_jobs"] == 1
            assert json.dumps(stats, sort_keys=True)  # JSON-serialisable for /stats
