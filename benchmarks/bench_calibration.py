"""Calibrate machine-local kernel thresholds and print an ``EngineConfig``.

The two data-dependent switch points of the partition kernel are knobs, not
constants, because their crossover depends on the host (cache sizes, numpy
build, CPU):

* ``backend_min_numpy_rows`` — below how many rows the pure-python backend
  beats the numpy backend (per-call dispatch overhead dominates tiny
  inputs).  Measured by timing a full encode + pairwise-intersect pass on
  the same relation under each backend across a row-count sweep.
* ``counting_sort_max_codes`` — up to which key-space bound the
  counting-sort grouping path (``uint16`` radix) beats the composite
  introsort.  Measured by timing ``NumpyBackend._stable_order`` with the
  counting path forced on vs off across a key-space sweep.
* ``shard_min_rows`` — above how many rows the row-sharded grouping path
  (thread-pooled per-shard sorts + merge) beats the sequential one.
  Measured by timing ``shard_group`` forced-sharded vs sequential across a
  row-count sweep; on a single-core host the sharded path never wins and
  the default stays.

The output is a ready-to-paste recommendation::

    PYTHONPATH=src python benchmarks/bench_calibration.py
    PYTHONPATH=src python benchmarks/bench_calibration.py \
        --output calibration.json --repeats 9

On a machine without numpy both sweeps are moot — the script says so and
exits cleanly (the python backend is the only choice, and the counting-sort
knob only steers numpy code).

Results are advisory: the defaults (``backend_min_numpy_rows=0``,
``counting_sort_max_codes=65536``) are already right for typical hosts; run
this when deploying on unusual hardware or after a numpy upgrade.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import (  # noqa: E402
    DEFAULT_SHARD_MIN_ROWS,
    ENV_BACKEND_MIN_NUMPY_ROWS,
    ENV_COUNTING_SORT_MAX_CODES,
    ENV_SHARD_MIN_ROWS,
)
from repro.session import Session  # noqa: E402

from bench_partition_kernel import COLUMN_SPECS, build_relation  # noqa: E402

#: Row counts swept for the python-vs-numpy crossover.
BACKEND_ROW_SWEEP = (100, 250, 500, 1_000, 2_000, 4_000)

#: Key-space bounds swept for the counting-sort-vs-introsort crossover
#: (``counting_sort_max_codes`` is capped at 65536 = the uint16 space).
KEY_SPACE_SWEEP = (64, 256, 1_024, 4_096, 16_384, 65_536)

#: Rows used for the sort sweep — large enough that sorting dominates.
SORT_SWEEP_ROWS = 50_000

#: Row counts swept for the sharded-vs-sequential grouping crossover.
SHARD_ROW_SWEEP = (10_000, 25_000, 50_000, 100_000, 200_000)

#: Key space of the shard sweep's synthetic code array (dense codes, the
#: regime ``shard_group`` sees from ``from_columns``).
SHARD_SWEEP_CODES = 1_024


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _encode_intersect_seconds(backend: str, n_rows: int, repeats: int) -> float:
    """Best-of time of one encode + pairwise-intersect pass on ``backend``."""
    from repro.relational.partition import StrippedPartition

    relation = build_relation(n_rows)
    names = relation.attribute_names
    with Session(backend=backend, backend_min_numpy_rows=0):
        partitions = [StrippedPartition.from_column(relation, n) for n in names]

        def work() -> None:
            for i in range(len(partitions)):
                for j in range(i + 1, len(partitions)):
                    partitions[i].intersect(partitions[j])

        return _best_of(repeats, work)


def calibrate_backend_min_rows(repeats: int) -> dict:
    """Sweep row counts; recommend the smallest n where numpy wins."""
    rows = []
    crossover = 0
    for n_rows in BACKEND_ROW_SWEEP:
        python_s = _encode_intersect_seconds("python", n_rows, repeats)
        numpy_s = _encode_intersect_seconds("numpy", n_rows, repeats)
        winner = "numpy" if numpy_s <= python_s else "python"
        rows.append(
            {
                "n_rows": n_rows,
                "python_s": round(python_s, 6),
                "numpy_s": round(numpy_s, 6),
                "winner": winner,
            }
        )
        if winner == "python":
            crossover = n_rows + 1  # python still ahead at this size
    # Everything >= the last python win goes to numpy; 0 means numpy always.
    recommended = 0 if crossover <= BACKEND_ROW_SWEEP[0] else crossover
    return {"sweep": rows, "recommended": recommended}


def calibrate_counting_sort(repeats: int) -> dict:
    """Sweep key-space bounds; recommend the largest bound where counting wins."""
    import numpy as np

    from repro.relational.backend import NumpyBackend

    rng = np.random.default_rng(7)
    rows = []
    recommended = 0
    for bound in KEY_SPACE_SWEEP:
        keys = rng.integers(0, bound, SORT_SWEEP_ROWS).astype(np.int64)
        counting_s = _best_of(repeats, lambda: NumpyBackend._stable_order(keys, bound, bound))
        introsort_s = _best_of(repeats, lambda: NumpyBackend._stable_order(keys, bound, 0))
        winner = "counting" if counting_s <= introsort_s else "introsort"
        rows.append(
            {
                "key_space": bound,
                "counting_s": round(counting_s, 6),
                "introsort_s": round(introsort_s, 6),
                "winner": winner,
            }
        )
        if winner == "counting":
            recommended = bound
    return {"sweep": rows, "recommended": recommended}


def calibrate_shard_min_rows(repeats: int) -> dict:
    """Sweep row counts; recommend the smallest n where sharding wins.

    If the sharded path never wins (the single-core case: thread dispatch
    is pure overhead), the recommendation is the stock default with a
    ``never_won`` note instead of an absurdly high cutoff.
    """
    import os

    import numpy as np

    from repro.relational.backend import get_backend

    rng = np.random.default_rng(7)
    n_shards = os.cpu_count() or 1
    rows = []
    crossover = None
    for n_rows in SHARD_ROW_SWEEP:
        codes = rng.integers(0, SHARD_SWEEP_CODES, n_rows).astype(np.int64)
        with Session(backend="numpy", shard_count=1):
            backend = get_backend(n_rows)
            sequential_s = _best_of(
                repeats, lambda: backend.group_by_codes(codes, SHARD_SWEEP_CODES)
            )
        with Session(backend="numpy", shard_count=max(2, n_shards), shard_min_rows=0):
            backend = get_backend(n_rows)
            sharded_s = _best_of(repeats, lambda: backend.shard_group(codes, SHARD_SWEEP_CODES))
        winner = "sharded" if sharded_s <= sequential_s else "sequential"
        rows.append(
            {
                "n_rows": n_rows,
                "sequential_s": round(sequential_s, 6),
                "sharded_s": round(sharded_s, 6),
                "winner": winner,
            }
        )
        if winner == "sharded" and crossover is None:
            crossover = n_rows
    if crossover is None:
        return {
            "sweep": rows,
            "recommended": DEFAULT_SHARD_MIN_ROWS,
            "never_won": True,
            "n_shards": n_shards,
        }
    return {"sweep": rows, "recommended": crossover, "never_won": False, "n_shards": n_shards}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output", default=None, help="optional JSON file for the raw sweep numbers"
    )
    args = parser.parse_args(argv)

    try:
        import numpy  # noqa: F401
    except ImportError:
        print(
            "[bench_calibration] numpy is not importable: the python backend "
            "is the only option, and both thresholds only steer numpy code.\n"
            "Nothing to calibrate."
        )
        return

    print(f"[bench_calibration] columns={len(COLUMN_SPECS)} repeats={args.repeats}")

    backend_cal = calibrate_backend_min_rows(args.repeats)
    print("\nbackend crossover (encode + pairwise intersect):")
    for row in backend_cal["sweep"]:
        print(
            f"  rows={row['n_rows']:>6}  python={row['python_s'] * 1e3:8.2f} ms"
            f"  numpy={row['numpy_s'] * 1e3:8.2f} ms  -> {row['winner']}"
        )

    sort_cal = calibrate_counting_sort(args.repeats)
    print(f"\nsort-path crossover ({SORT_SWEEP_ROWS} rows):")
    for row in sort_cal["sweep"]:
        print(
            f"  key_space={row['key_space']:>6}"
            f"  counting={row['counting_s'] * 1e3:8.2f} ms"
            f"  introsort={row['introsort_s'] * 1e3:8.2f} ms  -> {row['winner']}"
        )

    shard_cal = calibrate_shard_min_rows(args.repeats)
    print(f"\nsharded grouping crossover ({shard_cal['n_shards']} shard(s)):")
    for row in shard_cal["sweep"]:
        print(
            f"  rows={row['n_rows']:>7}"
            f"  sequential={row['sequential_s'] * 1e3:8.2f} ms"
            f"  sharded={row['sharded_s'] * 1e3:8.2f} ms  -> {row['winner']}"
        )
    if shard_cal["never_won"]:
        print(
            "  (sharding never won on this host — keeping the stock "
            f"shard_min_rows={DEFAULT_SHARD_MIN_ROWS})"
        )

    min_rows = backend_cal["recommended"]
    max_codes = sort_cal["recommended"]
    shard_min_rows = shard_cal["recommended"]
    print("\nrecommended EngineConfig for this machine:")
    print(
        "  EngineConfig(\n"
        f"      backend_min_numpy_rows={min_rows},\n"
        f"      counting_sort_max_codes={max_codes},\n"
        f"      shard_min_rows={shard_min_rows},\n"
        "  )"
    )
    print("or via environment:")
    print(f"  export {ENV_BACKEND_MIN_NUMPY_ROWS}={min_rows}")
    print(f"  export {ENV_COUNTING_SORT_MAX_CODES}={max_codes}")
    print(f"  export {ENV_SHARD_MIN_ROWS}={shard_min_rows}")

    if args.output:
        Path(args.output).write_text(
            json.dumps(
                {
                    "backend_min_numpy_rows": backend_cal,
                    "counting_sort_max_codes": sort_cal,
                    "shard_min_rows": shard_cal,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"\nraw sweeps written to {args.output}")


if __name__ == "__main__":
    main()
