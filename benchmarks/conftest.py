"""Shared fixtures for the benchmark suite.

The benchmark scale can be overridden through the ``REPRO_BENCH_SCALE``
environment variable (``tiny``/``small``/``medium``/``large`` or a float);
the default ``small`` keeps the full suite affordable on a laptop while
preserving the relative behaviour of the methods.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import load_all, paper_views  # noqa: E402

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def _numeric(scale: str):
    try:
        return float(scale)
    except ValueError:
        return scale


@pytest.fixture(scope="session")
def catalogs():
    """The four benchmark databases at the configured scale."""
    return load_all(_numeric(BENCH_SCALE))


@pytest.fixture(scope="session")
def workload():
    """The 16 SPJ views of Table II."""
    return paper_views()


def view_ids():
    """Stable benchmark identifiers for the 16 views."""
    return [case.key for case in paper_views()]
