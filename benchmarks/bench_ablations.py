"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **Theorem 4 pruning** (Algorithm 5): selective mining with and without the
  logical right-hand-side pruning.
* **Inference refinement** (Algorithm 4): with and without the data-driven
  ``refine`` subroutine.
* **Projection pruning** (Section IV-A): mining base-table FDs restricted to
  the view's projected attributes versus mining all attributes.
"""

import pytest

from repro.datasets import view_by_key
from repro.discovery import TANE
from repro.infine import InFine

ABLATION_VIEWS = ("mimic3/patients_admissions", "tpch/q9")


@pytest.mark.parametrize("use_theorem4", [True, False], ids=["theorem4-on", "theorem4-off"])
@pytest.mark.parametrize("view_key", ABLATION_VIEWS)
def test_ablation_theorem4_pruning(benchmark, catalogs, view_key, use_theorem4):
    case = view_by_key(view_key)
    catalog = catalogs[case.database]
    engine = InFine(use_theorem4=use_theorem4)

    result = benchmark.pedantic(engine.run, args=(case.spec, catalog), rounds=1, iterations=1)
    benchmark.group = f"ablation-theorem4:{view_key}"
    benchmark.extra_info["validations"] = result.stats.mine_candidates_validated
    benchmark.extra_info["logical_prunes"] = result.stats.mine_candidates_pruned_logically


@pytest.mark.parametrize("refine", [True, False], ids=["refine-on", "refine-off"])
@pytest.mark.parametrize("view_key", ABLATION_VIEWS)
def test_ablation_inference_refinement(benchmark, catalogs, view_key, refine):
    case = view_by_key(view_key)
    catalog = catalogs[case.database]
    engine = InFine(refine_inferred=refine)

    result = benchmark.pedantic(engine.run, args=(case.spec, catalog), rounds=1, iterations=1)
    benchmark.group = f"ablation-refine:{view_key}"
    benchmark.extra_info["inferred_fds"] = result.count_by_step()["inferFDs"]
    benchmark.extra_info["mined_fds"] = result.count_by_step()["mineFDs"]


@pytest.mark.parametrize("restricted", [True, False], ids=["projected-attrs", "all-attrs"])
def test_ablation_projection_pruning(benchmark, catalogs, restricted):
    """Base-table mining cost with and without the projected-attribute restriction (TPC-H Q3*)."""
    case = view_by_key("tpch/q3")
    catalog = catalogs[case.database]
    projected = set(case.spec.projected_attributes(catalog))
    tables = {name: catalog[name] for name in set(case.spec.base_relation_names())}

    def mine_bases():
        results = {}
        for name, relation in tables.items():
            if restricted:
                keep = [a for a in relation.attribute_names if a in projected or "key" in a]
            else:
                keep = list(relation.attribute_names)
            results[name] = TANE().discover(relation, keep)
        return results

    results = benchmark.pedantic(mine_bases, rounds=2, iterations=1)
    benchmark.group = "ablation-projection:tpch/q3"
    benchmark.extra_info["fd_counts"] = {name: len(res.fds) for name, res in results.items()}
