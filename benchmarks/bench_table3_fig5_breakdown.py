"""Table III / Fig. 5 — InFine per-step time and FD-fraction breakdown.

Each benchmark runs InFine on one view and reports, in ``extra_info``, the
per-step wall-clock breakdown (I/O, upstageFDs, inferFDs, mineFDs), the
per-step fraction of discovered FDs (the pie charts of Fig. 5), the coverage
of the view and the accuracy against the full-view reference.
"""

import pytest

from repro.datasets import paper_views
from repro.discovery import TANE
from repro.infine import InFine
from repro.metrics import accuracy_breakdown, self_breakdown, view_coverage


@pytest.mark.parametrize("case", paper_views(), ids=lambda c: c.key)
def test_table3_fig5_breakdown(benchmark, catalogs, case):
    catalog = catalogs[case.database]
    engine = InFine()

    result = benchmark.pedantic(engine.run, args=(case.spec, catalog), rounds=1, iterations=1)

    instance = case.spec.evaluate(catalog)
    reference = TANE().discover(instance, case.spec.projected_attributes(catalog)).fds
    accuracy = accuracy_breakdown(result, reference)

    benchmark.extra_info["view"] = case.paper_label
    benchmark.extra_info["coverage"] = round(view_coverage(case.spec, catalog), 2)
    benchmark.extra_info["time_breakdown"] = result.timings.as_dict()
    benchmark.extra_info["fd_fractions"] = {
        step: round(fraction, 3) for step, fraction in self_breakdown(result).items()
    }
    benchmark.extra_info["total_accuracy"] = round(accuracy.total_accuracy, 3)
    assert accuracy.total_accuracy == pytest.approx(1.0)
