"""Fig. 3 — runtime of InFine vs. the baselines with full SPJ computation.

One benchmark per (view, method) pair.  The InFine benchmark measures the
whole engine run (the reported quantity of the paper is its view pipeline —
base-table mining is excluded on both sides and is benchmarked separately in
``bench_table1_base_tables.py``); the baseline benchmarks measure the full
SPJ computation plus single-table discovery on the view result, exactly as
the paper's straightforward approach.
"""

import pytest

from repro.datasets import paper_views
from repro.infine import InFine, StraightforwardPipeline

BASELINES = ("tane", "fun", "fastfds", "hyfd")


@pytest.mark.parametrize("case", paper_views(), ids=lambda c: c.key)
def test_fig3_infine(benchmark, catalogs, case):
    catalog = catalogs[case.database]
    engine = InFine()

    result = benchmark.pedantic(engine.run, args=(case.spec, catalog), rounds=1, iterations=1)
    benchmark.group = f"fig3:{case.key}"
    benchmark.extra_info["view"] = case.paper_label
    benchmark.extra_info["fd_count"] = len(result)
    benchmark.extra_info["pipeline_seconds"] = result.timings.view_pipeline
    benchmark.extra_info["breakdown"] = result.timings.as_dict()


@pytest.mark.parametrize("algorithm", BASELINES)
@pytest.mark.parametrize("case", paper_views(), ids=lambda c: c.key)
def test_fig3_baseline_full_spj(benchmark, catalogs, case, algorithm):
    catalog = catalogs[case.database]
    pipeline = StraightforwardPipeline(algorithm)

    result = benchmark.pedantic(
        pipeline.run, args=(case.spec, catalog), kwargs={"with_provenance": False},
        rounds=1, iterations=1,
    )
    benchmark.group = f"fig3:{case.key}"
    benchmark.extra_info["view"] = case.paper_label
    benchmark.extra_info["fd_count"] = len(result.fds)
    benchmark.extra_info["spj_seconds"] = result.spj_seconds
