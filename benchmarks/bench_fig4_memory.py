"""Fig. 4 — peak memory consumption of InFine vs. the baselines.

Peak memory is measured with ``tracemalloc`` and reported in ``extra_info``
(the benchmark timing itself is secondary here).  One representative view per
database keeps the suite affordable; run ``python -m repro fig4`` for the
full 16-view memory table.
"""

import pytest

from repro.datasets import view_by_key
from repro.infine import InFine, StraightforwardPipeline
from repro.metrics import profile_call

REPRESENTATIVE_VIEWS = (
    "pte/atm_drug",
    "ptc/connected_bond",
    "mimic3/patients_admissions",
    "tpch/q3",
)
METHODS = ("infine", "tane", "fun", "fastfds", "hyfd")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("view_key", REPRESENTATIVE_VIEWS)
def test_fig4_peak_memory(benchmark, catalogs, view_key, method):
    case = view_by_key(view_key)
    catalog = catalogs[case.database]

    if method == "infine":
        runner = lambda: InFine().run(case.spec, catalog)  # noqa: E731
    else:
        runner = lambda: StraightforwardPipeline(method).run(  # noqa: E731
            case.spec, catalog, with_provenance=False
        )

    def profiled():
        return profile_call(runner)

    profile = benchmark.pedantic(profiled, rounds=1, iterations=1)
    benchmark.group = f"fig4:{view_key}"
    benchmark.extra_info["peak_memory_mb"] = round(profile.peak_memory_mb, 3)
    benchmark.extra_info["view"] = case.paper_label
