"""Fail when a fresh benchmark run regresses against the committed baseline.

The CI ``bench-smoke`` job reruns ``bench_partition_kernel.py`` at
``REPRO_BENCH_SCALE=small`` into a scratch JSON and gates the build on the
``vectorized`` headline (summed ``intersect`` + ``refines``)::

    python benchmarks/check_regression.py \\
        --baseline BENCH_partitions.json --fresh fresh_bench.json \\
        --label vectorized --max-regression 0.30

Exit status 1 (with a diff message) when
``fresh > baseline * (1 + max_regression)``; improvements and small noise
pass.  ``--metric`` selects another scalar from the run record
(e.g. ``seconds.g3`` using dotted paths).

Committed baselines compare numbers from *different* machines, so the gate
needs a generous envelope.  ``--two-ref`` instead benchmarks two git refs on
the **same runner**: it checks the merge base of ``--base-ref`` and ``HEAD``
out into a temporary worktree, runs ``--bench-cmd`` there and in the current
tree (``{out}`` in the command is replaced with a scratch JSON path), and
gates HEAD against the merge base::

    python benchmarks/check_regression.py --two-ref \\
        --base-ref origin/main \\
        --bench-cmd "python benchmarks/bench_partition_kernel.py \\
                     --label vectorized --output {out}" \\
        --label vectorized --max-regression 0.15

Same hardware on both legs means the envelope can be tight; ``PYTHONPATH``
is pointed at each tree's own ``src`` so every ref benchmarks its own code.
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path


def _metric(run: dict, path: str) -> float:
    value = run
    for part in path.split("."):
        try:
            value = value[part]
        except (KeyError, TypeError):
            raise SystemExit(
                f"metric {path!r} not found in run record "
                f"(available top-level keys: {sorted(run)})"
            ) from None
    if not isinstance(value, (int, float)):
        raise SystemExit(f"metric {path!r} is not a number: {value!r}")
    return float(value)


def _load_run(path: Path, label: str) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"benchmark file not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark file {path} is not valid JSON: {exc}")
    runs = data.get("runs", {})
    if label not in runs:
        raise SystemExit(f"label {label!r} not found in {path} (available: {sorted(runs)})")
    return runs[label]


def _git(repo: Path, *argv: str) -> str:
    process = subprocess.run(
        ["git", "-C", str(repo), *argv], capture_output=True, text=True
    )
    if process.returncode != 0:
        raise SystemExit(f"git {' '.join(argv)} failed: {process.stderr.strip()}")
    return process.stdout.strip()


def _run_bench(command: str, tree: Path, out: Path) -> None:
    """Run ``command`` (with ``{out}`` substituted) inside ``tree``.

    ``PYTHONPATH`` is pointed at the tree's own ``src`` so the checked-out
    ref benchmarks its own code, not the caller's.
    """
    argv = [part.replace("{out}", str(out)) for part in shlex.split(command)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(tree / "src")
    print(f"[check_regression] running in {tree}: {' '.join(argv)}")
    process = subprocess.run(argv, cwd=str(tree), env=env)
    if process.returncode != 0:
        raise SystemExit(f"benchmark command failed (exit {process.returncode}) in {tree}")


def _two_ref_files(args: argparse.Namespace, scratch: Path) -> tuple[Path, Path]:
    """Benchmark the merge base and HEAD on this runner; return both JSONs."""
    repo = Path(__file__).resolve().parent.parent
    base_sha = _git(repo, "merge-base", args.base_ref, "HEAD")
    head_sha = _git(repo, "rev-parse", "--short", "HEAD")
    print(f"[check_regression] two-ref: merge-base {base_sha[:12]} vs HEAD {head_sha}")
    baseline_json = scratch / "baseline.json"
    fresh_json = scratch / "fresh.json"
    worktree = scratch / "base-worktree"
    _git(repo, "worktree", "add", "--detach", str(worktree), base_sha)
    try:
        _run_bench(args.bench_cmd, worktree, baseline_json)
    finally:
        _git(repo, "worktree", "remove", "--force", str(worktree))
    _run_bench(args.bench_cmd, repo, fresh_json)
    return baseline_json, fresh_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        help="committed benchmark JSON (the trajectory file)",
    )
    parser.add_argument(
        "--fresh", type=Path, help="benchmark JSON produced by the fresh run"
    )
    parser.add_argument(
        "--two-ref",
        action="store_true",
        help="benchmark the merge base of --base-ref and HEAD on this runner "
        "instead of reading --baseline/--fresh files",
    )
    parser.add_argument(
        "--base-ref",
        default="origin/main",
        help="ref whose merge base with HEAD is the two-ref baseline "
        "(default: origin/main)",
    )
    parser.add_argument(
        "--bench-cmd",
        help="benchmark command for --two-ref; '{out}' is replaced with the "
        "scratch JSON path, and it runs once per ref inside that ref's tree",
    )
    parser.add_argument(
        "--label", default="vectorized", help="run label to compare (default: vectorized)"
    )
    parser.add_argument(
        "--metric",
        default="headline_intersect_refines",
        help="dotted path of the scalar to gate on (default: headline_intersect_refines)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional slowdown, e.g. 0.30 = +30%% (default: 0.30)",
    )
    args = parser.parse_args(argv)

    if args.two_ref:
        if not args.bench_cmd:
            parser.error("--two-ref requires --bench-cmd")
        if args.baseline or args.fresh:
            parser.error("--two-ref is mutually exclusive with --baseline/--fresh")
        with tempfile.TemporaryDirectory(prefix="check-regression-") as scratch:
            baseline_path, fresh_path = _two_ref_files(args, Path(scratch))
            baseline = _metric(_load_run(baseline_path, args.label), args.metric)
            fresh = _metric(_load_run(fresh_path, args.label), args.metric)
    else:
        if not args.baseline or not args.fresh:
            parser.error("--baseline and --fresh are required unless --two-ref is set")
        baseline = _metric(_load_run(args.baseline, args.label), args.metric)
        fresh = _metric(_load_run(args.fresh, args.label), args.metric)
    if baseline <= 0:
        raise SystemExit(f"baseline metric {args.metric!r} must be positive, got {baseline!r}")
    limit = baseline * (1.0 + args.max_regression)
    change = (fresh - baseline) / baseline
    verdict = "OK" if fresh <= limit else "REGRESSION"
    print(
        f"[check_regression] {args.label}/{args.metric}: "
        f"baseline={baseline * 1000:.2f} ms fresh={fresh * 1000:.2f} ms "
        f"({change:+.1%}, limit +{args.max_regression:.0%}) -> {verdict}"
    )
    if fresh > limit:
        print(
            f"fresh {args.metric} exceeds the allowed "
            f"+{args.max_regression:.0%} envelope over the committed baseline; "
            f"either fix the slowdown or re-baseline "
            f"{args.baseline} with a justification in the PR."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
