"""Fail when a fresh benchmark run regresses against the committed baseline.

The CI ``bench-smoke`` job reruns ``bench_partition_kernel.py`` at
``REPRO_BENCH_SCALE=small`` into a scratch JSON and gates the build on the
``vectorized`` headline (summed ``intersect`` + ``refines``)::

    python benchmarks/check_regression.py \\
        --baseline BENCH_partitions.json --fresh fresh_bench.json \\
        --label vectorized --max-regression 0.30

Exit status 1 (with a diff message) when
``fresh > baseline * (1 + max_regression)``; improvements and small noise
pass.  ``--metric`` selects another scalar from the run record
(e.g. ``seconds.g3`` using dotted paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _metric(run: dict, path: str) -> float:
    value = run
    for part in path.split("."):
        try:
            value = value[part]
        except (KeyError, TypeError):
            raise SystemExit(
                f"metric {path!r} not found in run record "
                f"(available top-level keys: {sorted(run)})"
            ) from None
    if not isinstance(value, (int, float)):
        raise SystemExit(f"metric {path!r} is not a number: {value!r}")
    return float(value)


def _load_run(path: Path, label: str) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"benchmark file not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark file {path} is not valid JSON: {exc}")
    runs = data.get("runs", {})
    if label not in runs:
        raise SystemExit(f"label {label!r} not found in {path} (available: {sorted(runs)})")
    return runs[label]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="committed benchmark JSON (the trajectory file)",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="benchmark JSON produced by the fresh run"
    )
    parser.add_argument(
        "--label", default="vectorized", help="run label to compare (default: vectorized)"
    )
    parser.add_argument(
        "--metric",
        default="headline_intersect_refines",
        help="dotted path of the scalar to gate on (default: headline_intersect_refines)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional slowdown, e.g. 0.30 = +30%% (default: 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = _metric(_load_run(args.baseline, args.label), args.metric)
    fresh = _metric(_load_run(args.fresh, args.label), args.metric)
    if baseline <= 0:
        raise SystemExit(f"baseline metric {args.metric!r} must be positive, got {baseline!r}")
    limit = baseline * (1.0 + args.max_regression)
    change = (fresh - baseline) / baseline
    verdict = "OK" if fresh <= limit else "REGRESSION"
    print(
        f"[check_regression] {args.label}/{args.metric}: "
        f"baseline={baseline * 1000:.2f} ms fresh={fresh * 1000:.2f} ms "
        f"({change:+.1%}, limit +{args.max_regression:.0%}) -> {verdict}"
    )
    if fresh > limit:
        print(
            f"fresh {args.metric} exceeds the allowed "
            f"+{args.max_regression:.0%} envelope over the committed baseline; "
            f"either fix the slowdown or re-baseline "
            f"{args.baseline} with a justification in the PR."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
