"""Table II — view computation and FD counts of the 16 SPJ views.

Regenerates the ``Tuple#`` and ``FD#`` columns of Table II: each benchmark
evaluates one view and runs the reference discovery algorithm on it.
"""

import pytest

from repro.datasets import paper_views
from repro.discovery import TANE


@pytest.mark.parametrize("case", paper_views(), ids=lambda c: c.key)
def test_table2_view_characteristics(benchmark, catalogs, case):
    catalog = catalogs[case.database]

    def evaluate_and_discover():
        instance = case.spec.evaluate(catalog)
        attributes = case.spec.projected_attributes(catalog)
        return instance, TANE().discover(instance, attributes)

    instance, result = benchmark.pedantic(evaluate_and_discover, rounds=1, iterations=1)
    benchmark.extra_info["view"] = case.paper_label
    benchmark.extra_info["tuples"] = len(instance)
    benchmark.extra_info["fd_count"] = len(result.fds)
