"""Throughput/latency benchmark of the multi-tenant serving layer.

Measures the programmatic :class:`repro.serve.Server` path (pool + queue +
worker execution, no HTTP socket noise) under a fixed multi-tenant job mix —
each tenant submits interleaved ``validate``/``profile``/``discover``
requests against its own relation — while sweeping the worker-pool size
(1/2/4/8/16 by default)::

    PYTHONPATH=src python benchmarks/bench_serve.py --label serve

For each worker count the bench records wall-clock throughput (jobs/s) and
per-job latency percentiles (p50/p95, submission to completion).  Results
merge under their label into ``BENCH_serve.json`` (repo root), following the
conventions of ``bench_partition_kernel.py``; the headline number is the
throughput at the largest worker count.

Scaling expectation: the kernel is CPU-bound Python/numpy, so thread
workers mostly overlap queue/serialisation overhead and the numpy kernel's
GIL-releasing stretches — the interesting signals are (a) the serving
overhead at ``workers=1`` versus bare sequential session calls and (b) the
point where GIL contention starts to cost (throughput should stay within a
few percent of the bare baseline across the sweep, not collapse).

Scale comes from ``REPRO_BENCH_SCALE`` (``tiny``/``small``/``medium``/
``large`` or an explicit row count).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.relational.relation import Relation  # noqa: E402
from repro.serve import JobRequest, Server  # noqa: E402
from repro.session import Session  # noqa: E402

#: Rows of each tenant's relation per named scale.
SCALE_ROWS = {"tiny": 300, "small": 1_500, "medium": 5_000, "large": 15_000}

#: (attribute, cardinality as a function of n_rows) of the tenant relations.
COLUMN_SPECS = (
    ("flag", lambda n: 2),
    ("grade", lambda n: 5),
    ("city", lambda n: 40),
    ("dept", lambda n: max(2, n // 100)),
    ("account", lambda n: max(4, n // 20)),
    ("region", lambda n: 3),
)


def _resolve_rows(scale: str) -> int:
    if scale in SCALE_ROWS:
        return SCALE_ROWS[scale]
    try:
        return max(10, int(float(scale) * SCALE_ROWS["small"]))
    except ValueError:
        raise SystemExit(f"unknown REPRO_BENCH_SCALE {scale!r}")


def build_relation(name: str, n_rows: int, seed: int) -> Relation:
    rng = random.Random(seed)
    names = tuple(name for name, _ in COLUMN_SPECS)
    cards = [max(1, card(n_rows)) for _, card in COLUMN_SPECS]
    rows = [
        tuple(f"{col}_{rng.randrange(card)}" for (col, _), card in zip(COLUMN_SPECS, cards))
        for _ in range(n_rows)
    ]
    return Relation(name, names, rows)


def tenant_requests(tenant: str, relation: Relation, jobs: int) -> list[JobRequest]:
    """An interleaved validate/profile/discover mix of ``jobs`` requests."""
    mix = [
        JobRequest(
            tenant=tenant,
            kind="validate",
            relation=relation,
            params={"fds": ["dept -> flag", "account -> grade", "city,region -> dept"]},
        ),
        JobRequest(
            tenant=tenant,
            kind="profile",
            relation=relation,
            params={"threshold": 0.3, "max_lhs": 2},
        ),
        JobRequest(
            tenant=tenant,
            kind="discover",
            relation=relation,
            params={"algorithm": "tane", "max_lhs_size": 2},
        ),
    ]
    return [mix[i % len(mix)] for i in range(jobs)]


def bench_workers(workers: int, requests_by_tenant: dict[str, list[JobRequest]]) -> dict:
    """Run the full job mix through a fresh server; returns timing stats."""
    n_tenants = len(requests_by_tenant)
    total_jobs = sum(len(reqs) for reqs in requests_by_tenant.values())
    with Server(
        workers=workers,
        max_queue=total_jobs,
        max_inflight_per_tenant=1,
        max_sessions=n_tenants,
    ) as server:
        started = time.perf_counter()
        tickets = []
        # Round-robin submission: all tenants contend from the first job on.
        for round_requests in zip(*requests_by_tenant.values()):
            for request in round_requests:
                tickets.append(server.submit(request))
        jobs = [server.queue.get(ticket.job_id) for ticket in tickets]
        for job in jobs:
            if not job.wait(600):
                raise SystemExit(f"job {job.job_id} did not finish")
        elapsed = time.perf_counter() - started
        failed = [job for job in jobs if job.status != "done"]
        if failed:
            raise SystemExit(f"{len(failed)} jobs failed: {failed[0].error}")
        latencies = sorted(job.finished_at - job.submitted_at for job in jobs)
    return {
        "workers": workers,
        "jobs": total_jobs,
        "tenants": n_tenants,
        "wall_seconds": round(elapsed, 6),
        "throughput_jobs_per_s": round(total_jobs / elapsed, 3),
        "latency_p50_s": round(statistics.median(latencies), 6),
        "latency_p95_s": round(latencies[max(0, int(len(latencies) * 0.95) - 1)], 6),
    }


def bench_bare_baseline(requests_by_tenant: dict[str, list[JobRequest]]) -> float:
    """Sequential bare-session execution of the same mix (no serving layer)."""
    from repro.serve import execute_request

    started = time.perf_counter()
    for tenant, requests in requests_by_tenant.items():
        session = Session()
        for request in requests:
            execute_request(session, request)
    return time.perf_counter() - started


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="serve", help="run label merged into the output JSON")
    default_output = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    parser.add_argument(
        "--output", default=str(default_output), help="path of the JSON trajectory file"
    )
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--jobs-per-tenant", type=int, default=9)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[1, 2, 4, 8, 16],
        help="worker-pool sizes to sweep",
    )
    args = parser.parse_args(argv)

    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    n_rows = _resolve_rows(scale)
    requests_by_tenant = {
        f"tenant-{i}": tenant_requests(
            f"tenant-{i}",
            build_relation(f"rel_{i}", n_rows, seed=7 + i),
            args.jobs_per_tenant,
        )
        for i in range(args.tenants)
    }

    bare_seconds = bench_bare_baseline(requests_by_tenant)
    sweeps = [bench_workers(workers, requests_by_tenant) for workers in args.workers]
    result = {
        "n_rows": n_rows,
        "tenants": args.tenants,
        "jobs_per_tenant": args.jobs_per_tenant,
        "bare_sequential_seconds": round(bare_seconds, 6),
        "sweep": sweeps,
        "headline_throughput_jobs_per_s": sweeps[-1]["throughput_jobs_per_s"],
    }

    output = Path(args.output)
    data: dict = {"schema_version": 1, "runs": {}}
    if output.exists():
        try:
            data = json.loads(output.read_text())
        except json.JSONDecodeError:
            pass
    data.setdefault("runs", {})[args.label] = {"scale": scale, **result}
    output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    print(
        f"[bench_serve] scale={scale} rows/tenant={n_rows} "
        f"tenants={args.tenants} jobs/tenant={args.jobs_per_tenant}"
    )
    print(
        f"  bare sequential: {bare_seconds:.3f} s "
        f"({args.tenants * args.jobs_per_tenant / bare_seconds:.1f} jobs/s)"
    )
    for sweep in sweeps:
        print(
            f"  workers={sweep['workers']:<3} "
            f"throughput={sweep['throughput_jobs_per_s']:8.1f} jobs/s  "
            f"p50={sweep['latency_p50_s'] * 1000:7.1f} ms  "
            f"p95={sweep['latency_p95_s'] * 1000:7.1f} ms"
        )
    print(f"  -> merged into {output} under label {args.label!r}")


if __name__ == "__main__":
    main()
