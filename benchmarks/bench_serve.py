"""Throughput/latency benchmark of the multi-tenant serving layer.

Measures the programmatic :class:`repro.serve.Server` path (pool + queue +
worker execution, no HTTP socket noise) under a fixed CPU-bound multi-tenant
job mix — each tenant submits interleaved ``validate``/``profile``/
``discover`` requests against its own relation — sweeping the worker-pool
size (1/2/4/8 by default) for each executor (``thread`` and ``process`` by
default)::

    PYTHONPATH=src python benchmarks/bench_serve.py --label serve
    PYTHONPATH=src python benchmarks/bench_serve.py --executors process

For each (executor, worker count) pair the bench records wall-clock
throughput (jobs/s) and per-job latency percentiles (p50/p95, submission to
completion).  Results merge under their label into ``BENCH_serve.json``
(repo root), following the conventions of ``bench_partition_kernel.py``;
run metadata records the executor kinds, worker counts, multiprocessing
start method and the **host CPU count** — read flat process-executor curves
against that number before reading them as regressions.

Scaling expectation: the kernel is CPU-bound Python/numpy, so thread
workers serialise on the GIL (throughput stays within a few percent of the
bare sequential baseline across the sweep — the signal is that it does not
*collapse*), while process workers run truly in parallel: on an N-core host
the process executor should approach min(workers, N)× the thread executor's
throughput, minus the wire cost of shipping each relation to a worker
process.  Worker processes are warmed up before timing starts, so spawn
cost is not measured.

A registry-backed leg rides along: one shared relation submitted
``jobs_per_tenant`` times, inline versus ``PUT /relations`` once and
``relation_ref`` thereafter, recording wall seconds and submitted payload
bytes for both modes (the ``registry`` key of the merged run).

An shm-vs-pickled leg (the ``shm`` key) compares the process executor's
shared-memory data plane against the per-job pickled/JSON wire path on the
same hot-relation mix: published-once ``/dev/shm`` segments attached
zero-copy by each worker versus rows re-shipped and re-decoded per job.
On a 1-core host the win shows up as per-job payload bytes and decode
overhead, not parallel throughput.

Scale comes from ``REPRO_BENCH_SCALE`` (``tiny``/``small``/``medium``/
``large`` or an explicit row count).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import ServeConfig  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.serve import JobRequest, Server  # noqa: E402
from repro.session import Session  # noqa: E402

#: Rows of each tenant's relation per named scale.
SCALE_ROWS = {"tiny": 300, "small": 1_500, "medium": 5_000, "large": 15_000}

#: (attribute, cardinality as a function of n_rows) of the tenant relations.
COLUMN_SPECS = (
    ("flag", lambda n: 2),
    ("grade", lambda n: 5),
    ("city", lambda n: 40),
    ("dept", lambda n: max(2, n // 100)),
    ("account", lambda n: max(4, n // 20)),
    ("region", lambda n: 3),
)


def _resolve_rows(scale: str) -> int:
    if scale in SCALE_ROWS:
        return SCALE_ROWS[scale]
    try:
        return max(10, int(float(scale) * SCALE_ROWS["small"]))
    except ValueError:
        raise SystemExit(f"unknown REPRO_BENCH_SCALE {scale!r}")


def build_relation(name: str, n_rows: int, seed: int) -> Relation:
    rng = random.Random(seed)
    names = tuple(name for name, _ in COLUMN_SPECS)
    cards = [max(1, card(n_rows)) for _, card in COLUMN_SPECS]
    rows = [
        tuple(f"{col}_{rng.randrange(card)}" for (col, _), card in zip(COLUMN_SPECS, cards))
        for _ in range(n_rows)
    ]
    return Relation(name, names, rows)


#: The interleaved (kind, params) job mix each tenant cycles through.
JOB_MIX = (
    ("validate", {"fds": ["dept -> flag", "account -> grade", "city,region -> dept"]}),
    ("profile", {"threshold": 0.3, "max_lhs": 2}),
    ("discover", {"algorithm": "tane", "max_lhs_size": 3}),
)


def tenant_requests(tenant: str, n_rows: int, jobs: int, seed: int) -> list[JobRequest]:
    """An interleaved validate/profile/discover mix of ``jobs`` requests.

    Every request carries its **own** relation (same shape, different seed):
    the wire protocol ships relations inline, so a worker process pays the
    decode/encode of each job's relation — giving the thread executor the
    same cold-cache job makes the comparison measure executor scaling, not
    relation-cache reuse (and matches a serving mix where tenants profile
    many datasets, which is the CPU-bound case worth scaling).
    """
    requests = []
    for index in range(jobs):
        kind, params = JOB_MIX[index % len(JOB_MIX)]
        relation = build_relation(f"rel_{seed}_{index}", n_rows, seed=seed * 1000 + index)
        requests.append(
            JobRequest(tenant=tenant, kind=kind, relation=relation, params=dict(params))
        )
    return requests


def bench_workers(
    executor: str, workers: int, requests_by_tenant: dict[str, list[JobRequest]]
) -> dict:
    """Run the full job mix through a fresh server; returns timing stats.

    The server (including executor warmup — worker processes are started
    and pinged before the clock starts) is built outside the timed window,
    so the numbers measure steady-state serving, not boot.
    """
    n_tenants = len(requests_by_tenant)
    total_jobs = sum(len(reqs) for reqs in requests_by_tenant.values())
    with Server(
        workers=workers,
        max_queue=total_jobs,
        max_inflight_per_tenant=1,
        max_sessions=n_tenants,
        executor=executor,
        warmup=True,
    ) as server:
        started = time.perf_counter()
        tickets = []
        # Round-robin submission: all tenants contend from the first job on.
        for round_requests in zip(*requests_by_tenant.values()):
            for request in round_requests:
                tickets.append(server.submit(request))
        jobs = [server.queue.get(ticket.job_id) for ticket in tickets]
        for job in jobs:
            if not job.wait(600):
                raise SystemExit(f"job {job.job_id} did not finish")
        elapsed = time.perf_counter() - started
        failed = [job for job in jobs if job.status != "done"]
        if failed:
            raise SystemExit(f"{len(failed)} jobs failed: {failed[0].error}")
        latencies = sorted(job.finished_at - job.submitted_at for job in jobs)
    return {
        "executor": executor,
        "workers": workers,
        "jobs": total_jobs,
        "tenants": n_tenants,
        "wall_seconds": round(elapsed, 6),
        "throughput_jobs_per_s": round(total_jobs / elapsed, 3),
        "latency_p50_s": round(statistics.median(latencies), 6),
        "latency_p95_s": round(latencies[max(0, int(len(latencies) * 0.95) - 1)], 6),
    }


def bench_registry(executor: str, workers: int, n_rows: int, jobs: int) -> dict:
    """The registry-backed leg: one shared relation, ``jobs`` submissions.

    Compares shipping the relation inline with every request against
    ``PUT /relations`` once and submitting by ``relation_ref`` — the
    hot-relation serving mix the content-addressed registry exists for.
    Records wall seconds and the submitted payload bytes of both modes
    (the byte ratio is deterministic; the wall-clock gap grows with
    relation size and, for the process executor, with the per-job decode
    the inline path pays in each worker).
    """
    relation = build_relation("shared", n_rows, seed=1234)
    mix = [JOB_MIX[index % len(JOB_MIX)] for index in range(jobs)]
    timings: dict[str, dict] = {}
    for mode in ("inline", "relation_ref"):
        with tempfile.TemporaryDirectory(prefix="repro-bench-registry-") as root:
            with Server(
                workers=workers,
                max_queue=jobs,
                max_inflight_per_tenant=workers,
                executor=executor,
                warmup=True,
                registry=root,
            ) as server:
                content_hash = server.put_relation(relation)["hash"]
                payload_bytes = 0
                started = time.perf_counter()
                tickets = []
                for kind, params in mix:
                    request = {
                        "schema": "repro/job-request-v1",
                        "tenant": "bench",
                        "kind": kind,
                        "params": dict(params),
                        "overrides": {},
                    }
                    if mode == "inline":
                        request["relation"] = {
                            "name": relation.name,
                            "attributes": list(relation.attribute_names),
                            "rows": [list(row) for row in relation.rows],
                        }
                    else:
                        request["relation_ref"] = content_hash
                    payload_bytes += len(json.dumps(request).encode("utf-8"))
                    tickets.append(server.submit(request))
                jobs_list = [server.queue.get(ticket.job_id) for ticket in tickets]
                for job in jobs_list:
                    if not job.wait(600):
                        raise SystemExit(f"registry bench job {job.job_id} did not finish")
                    if job.status != "done":
                        raise SystemExit(f"registry bench job failed: {job.error}")
                elapsed = time.perf_counter() - started
        timings[mode] = {
            "wall_seconds": round(elapsed, 6),
            "payload_bytes": payload_bytes,
            "throughput_jobs_per_s": round(jobs / elapsed, 3),
        }
    inline, by_ref = timings["inline"], timings["relation_ref"]
    return {
        "executor": executor,
        "workers": workers,
        "jobs": jobs,
        "n_rows": n_rows,
        "inline": inline,
        "relation_ref": by_ref,
        "payload_bytes_saved": inline["payload_bytes"] - by_ref["payload_bytes"],
        "speedup_vs_inline": round(inline["wall_seconds"] / by_ref["wall_seconds"], 3),
    }


def bench_shm(workers: int, n_rows: int, jobs: int) -> dict | None:
    """The shm-vs-pickled leg: a hot relation served to process workers.

    ``pickled`` ships the relation's rows to the workers as per-job JSON
    through the pipe (the in-memory-registry path — what every job paid
    before the shared-memory data plane); ``shm`` publishes the relation
    once as a ``/dev/shm`` segment and ships only attach metadata, workers
    reconstructing zero-copy views.  Records wall seconds plus the per-job
    payload actually travelling to a worker, and the plane's own counters
    (``shm_jobs == jobs`` is the proof the leg really attached).  Returns
    ``None`` on hosts without the plane.
    """
    from repro.shm import plane_available

    if not plane_available():
        return None
    relation = build_relation("shared", n_rows, seed=1234)
    mix = [JOB_MIX[index % len(JOB_MIX)] for index in range(jobs)]
    inline_form = {
        "name": relation.name,
        "attributes": list(relation.attribute_names),
        "rows": [list(row) for row in relation.rows],
    }
    timings: dict[str, dict] = {}
    for mode in ("pickled", "shm"):
        with tempfile.TemporaryDirectory(prefix="repro-bench-shm-") as root:
            server_kwargs = (
                # In-memory registry: refs resolve to inline rows per job.
                {"shm_bytes": 0}
                if mode == "pickled"
                else {"registry": root}
            )
            with Server(
                workers=workers,
                max_queue=jobs,
                max_inflight_per_tenant=workers,
                executor="process",
                warmup=True,
                **server_kwargs,
            ) as server:
                content_hash = server.put_relation(relation)["hash"]
                payload_bytes = 0
                started = time.perf_counter()
                tickets = []
                for kind, params in mix:
                    request = {
                        "schema": "repro/job-request-v1",
                        "tenant": "bench",
                        "kind": kind,
                        "relation_ref": content_hash,
                        "params": dict(params),
                        "overrides": {},
                    }
                    # What actually travels to a worker per job: the inline
                    # rows (pickled leg resolves the ref into the payload)
                    # versus the untouched ref payload (shm leg).
                    wire = dict(request)
                    if mode == "pickled":
                        wire.pop("relation_ref")
                        wire["relation"] = inline_form
                    payload_bytes += len(json.dumps(wire).encode("utf-8"))
                    tickets.append(server.submit(request))
                jobs_list = [server.queue.get(ticket.job_id) for ticket in tickets]
                for job in jobs_list:
                    if not job.wait(600):
                        raise SystemExit(f"shm bench job {job.job_id} did not finish")
                    if job.status != "done":
                        raise SystemExit(f"shm bench job failed: {job.error}")
                elapsed = time.perf_counter() - started
                executor_stats = server.executor.stats()
        timings[mode] = {
            "wall_seconds": round(elapsed, 6),
            "payload_bytes": payload_bytes,
            "payload_bytes_per_job": payload_bytes // jobs,
            "throughput_jobs_per_s": round(jobs / elapsed, 3),
            "shm_jobs": executor_stats["shm_jobs"],
            "wire_jobs": executor_stats["wire_jobs"],
        }
    pickled, shm = timings["pickled"], timings["shm"]
    return {
        "workers": workers,
        "jobs": jobs,
        "n_rows": n_rows,
        "pickled": pickled,
        "shm": shm,
        "payload_bytes_saved_per_job": (
            pickled["payload_bytes_per_job"] - shm["payload_bytes_per_job"]
        ),
        "speedup_vs_pickled": round(pickled["wall_seconds"] / shm["wall_seconds"], 3),
    }


def bench_bare_baseline(requests_by_tenant: dict[str, list[JobRequest]]) -> float:
    """Sequential bare-session execution of the same mix (no serving layer)."""
    from repro.serve import execute_request

    started = time.perf_counter()
    for tenant, requests in requests_by_tenant.items():
        session = Session()
        for request in requests:
            execute_request(session, request)
    return time.perf_counter() - started


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="serve", help="run label merged into the output JSON")
    default_output = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    parser.add_argument(
        "--output", default=str(default_output), help="path of the JSON trajectory file"
    )
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--jobs-per-tenant", type=int, default=9)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[1, 2, 4, 8],
        help="worker-pool sizes to sweep",
    )
    parser.add_argument(
        "--executors",
        nargs="*",
        choices=("thread", "process"),
        default=["thread", "process"],
        help="executor kinds to sweep (default: both)",
    )
    args = parser.parse_args(argv)

    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    n_rows = _resolve_rows(scale)
    requests_by_tenant = {
        f"tenant-{i}": tenant_requests(
            f"tenant-{i}", n_rows, args.jobs_per_tenant, seed=7 + i
        )
        for i in range(args.tenants)
    }

    bare_seconds = bench_bare_baseline(requests_by_tenant)
    sweeps = [
        bench_workers(executor, workers, requests_by_tenant)
        for executor in args.executors
        for workers in args.workers
    ]
    registry_workers = min(2, max(args.workers))
    registry_legs = [
        bench_registry(executor, registry_workers, n_rows, jobs=args.jobs_per_tenant)
        for executor in args.executors
    ]
    shm_leg = (
        bench_shm(registry_workers, n_rows, jobs=args.jobs_per_tenant)
        if "process" in args.executors
        else None
    )
    headlines = {
        executor: max(
            entry["throughput_jobs_per_s"]
            for entry in sweeps
            if entry["executor"] == executor
        )
        for executor in args.executors
    }
    result = {
        "n_rows": n_rows,
        "tenants": args.tenants,
        "jobs_per_tenant": args.jobs_per_tenant,
        "bare_sequential_seconds": round(bare_seconds, 6),
        "meta": {
            # Read scaling curves against the host: a process sweep cannot
            # beat min(workers, host_cpu_count)x on CPU-bound jobs.
            "host_cpu_count": os.cpu_count(),
            "executors": list(args.executors),
            "worker_counts": list(args.workers),
            "start_method": ServeConfig.from_env().start_method,
        },
        "sweep": sweeps,
        "registry": registry_legs,
        "shm": shm_leg,
        "headline_by_executor": headlines,
        "headline_throughput_jobs_per_s": max(headlines.values()),
    }

    output = Path(args.output)
    data: dict = {"schema_version": 1, "runs": {}}
    if output.exists():
        try:
            data = json.loads(output.read_text())
        except json.JSONDecodeError:
            pass
    data.setdefault("runs", {})[args.label] = {"scale": scale, **result}
    output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    print(
        f"[bench_serve] scale={scale} rows/tenant={n_rows} "
        f"tenants={args.tenants} jobs/tenant={args.jobs_per_tenant} "
        f"host_cpus={os.cpu_count()}"
    )
    print(
        f"  bare sequential: {bare_seconds:.3f} s "
        f"({args.tenants * args.jobs_per_tenant / bare_seconds:.1f} jobs/s)"
    )
    for sweep in sweeps:
        print(
            f"  executor={sweep['executor']:<8} workers={sweep['workers']:<3} "
            f"throughput={sweep['throughput_jobs_per_s']:8.1f} jobs/s  "
            f"p50={sweep['latency_p50_s'] * 1000:7.1f} ms  "
            f"p95={sweep['latency_p95_s'] * 1000:7.1f} ms"
        )
    for leg in registry_legs:
        saved = leg["payload_bytes_saved"]
        inline_bytes = leg["inline"]["payload_bytes"]
        print(
            f"  registry executor={leg['executor']:<8} workers={leg['workers']:<3} "
            f"inline={leg['inline']['wall_seconds']:.3f} s  "
            f"by-ref={leg['relation_ref']['wall_seconds']:.3f} s "
            f"(x{leg['speedup_vs_inline']:.2f})  "
            f"payload saved={saved:,} B ({100.0 * saved / inline_bytes:.1f}%)"
        )
    if shm_leg is not None:
        saved = shm_leg["payload_bytes_saved_per_job"]
        pickled_bytes = shm_leg["pickled"]["payload_bytes_per_job"]
        print(
            f"  shm      executor=process  workers={shm_leg['workers']:<3} "
            f"pickled={shm_leg['pickled']['wall_seconds']:.3f} s  "
            f"shm={shm_leg['shm']['wall_seconds']:.3f} s "
            f"(x{shm_leg['speedup_vs_pickled']:.2f})  "
            f"payload/job saved={saved:,} B ({100.0 * saved / pickled_bytes:.1f}%)  "
            f"shm_jobs={shm_leg['shm']['shm_jobs']}"
        )
    print(f"  -> merged into {output} under label {args.label!r}")


if __name__ == "__main__":
    main()
