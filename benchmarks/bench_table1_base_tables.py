"""Table I — FD discovery on the base tables of every database.

Regenerates the ``FD#`` column of Table I: for each database, the benchmark
discovers the minimal FDs of every base table with TANE and reports the
per-table counts in ``extra_info``.
"""

import pytest

from repro.discovery import TANE


@pytest.mark.parametrize("database", ["pte", "ptc", "mimic3", "tpch"])
def test_table1_base_table_discovery(benchmark, catalogs, database):
    catalog = catalogs[database]

    def discover_all():
        return {name: TANE().discover(relation) for name, relation in catalog.items()}

    results = benchmark.pedantic(discover_all, rounds=2, iterations=1)
    benchmark.extra_info["fd_counts"] = {name: len(result.fds) for name, result in results.items()}
    benchmark.extra_info["table_sizes"] = {name: len(rel) for name, rel in catalog.items()}
