"""Micro-benchmark of the partition kernel (encode / intersect / refines / g3).

Every partition-based code path — TANE/FUN/HyFD discovery, InFine's
``mineFDs`` validation and the g3 approximate checks — bottoms out in the
primitives timed here:

* **encode** — building single-attribute stripped partitions from raw columns;
* **intersect** — the partition product ``π(X) * π(Y)``;
* **refines** — the refinement test behind ``X -> A`` validity;
* **g3** — the violation-fraction measure of approximate FDs;
* **validate_level** — the batched per-level candidate validation entry
  point (one backend call per lattice level; the numpy backend stacks
  candidates across LHS partitions when the level is dispatch-bound), timed
  against the equivalent scalar ``fd_holds_fast`` loop (``validate_scalar``).

The benchmark is a plain script (no pytest dependency) so it can run on any
checkout and emit comparable numbers::

    PYTHONPATH=src python benchmarks/bench_partition_kernel.py --label seed
    PYTHONPATH=src python benchmarks/bench_partition_kernel.py --label columnar
    PYTHONPATH=src python benchmarks/bench_partition_kernel.py --label vectorized
    PYTHONPATH=src python benchmarks/bench_partition_kernel.py \
        --label python-fallback --backend python

``--backend`` pins the partition backend (default: the process-wide
selection, i.e. numpy when importable); the active backend name is recorded
with each run.  Each run is merged under its label into
``BENCH_partitions.json`` (repo root by default) so successive PRs
accumulate a perf trajectory.  The headline number — the one the acceptance
criteria compare — is the summed ``intersect`` + ``refines`` time at the
configured scale.

Scale comes from ``REPRO_BENCH_SCALE`` (``tiny``/``small``/``medium``/
``large`` or an explicit row count), matching the conventions of the pytest
benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.relational.backend import get_backend  # noqa: E402
from repro.session import Session  # noqa: E402
from repro.relational.partition import (  # noqa: E402
    PartitionCache,
    StrippedPartition,
    fd_holds_fast,
    fd_violation_fraction,
    validate_level,
)
from repro.relational.relation import Relation  # noqa: E402

#: Rows per named scale.  The column layout (below) is scale-independent.
SCALE_ROWS = {"tiny": 1_000, "small": 6_000, "medium": 20_000, "large": 60_000}

#: (attribute name, cardinality as a function of n_rows).  A mix of low- and
#: high-cardinality columns exercises both the dense and sparse regimes of
#: the kernel; none is unique so every partition keeps non-singleton groups.
COLUMN_SPECS = (
    ("flag", lambda n: 2),
    ("grade", lambda n: 5),
    ("code", lambda n: 12),
    ("city", lambda n: 40),
    ("dept", lambda n: max(2, n // 100)),
    ("account", lambda n: max(4, n // 20)),
    ("batch", lambda n: 8),
    ("region", lambda n: 3),
)

G3_CHECKS = (
    (("dept",), "flag"),
    (("account",), "grade"),
    (("dept", "region"), "code"),
    (("city", "batch"), "grade"),
)


def _resolve_rows(scale: str) -> int:
    if scale in SCALE_ROWS:
        return SCALE_ROWS[scale]
    try:
        return max(10, int(float(scale) * SCALE_ROWS["small"]))
    except ValueError:
        raise SystemExit(f"unknown REPRO_BENCH_SCALE {scale!r}")


def build_relation(n_rows: int, seed: int = 7) -> Relation:
    """A deterministic random relation with mixed-cardinality string columns."""
    rng = random.Random(seed)
    names = tuple(name for name, _ in COLUMN_SPECS)
    cards = [max(1, card(n_rows)) for _, card in COLUMN_SPECS]
    rows = [
        tuple(f"{name}_{rng.randrange(card)}" for (name, _), card in zip(COLUMN_SPECS, cards))
        for _ in range(n_rows)
    ]
    return Relation("bench", names, rows)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(n_rows: int, repeats: int = 3) -> dict:
    relation = build_relation(n_rows)
    names = relation.attribute_names

    # encode: fresh relation per repeat so per-column caches cannot leak
    # between measurements.
    def encode() -> None:
        fresh = Relation("bench", relation.schema, relation.rows)
        for name in names:
            StrippedPartition.from_column(fresh, name)

    encode_s = _best_of(repeats, encode)

    partitions = [StrippedPartition.from_column(relation, name) for name in names]
    pairs = [
        (partitions[i], partitions[j])
        for i in range(len(partitions))
        for j in range(i + 1, len(partitions))
    ]

    intersect_s = _best_of(repeats, lambda: [left.intersect(right) for left, right in pairs])
    refines_s = _best_of(repeats, lambda: [left.refines(right) for left, right in pairs])

    def g3() -> None:
        cache = PartitionCache(relation)
        for lhs, rhs in G3_CHECKS:
            fd_violation_fraction(relation, lhs, rhs, cache)

    g3_s = _best_of(repeats, g3)

    # Batched candidate validation: every attribute pair partition as LHS,
    # every remaining attribute as RHS — the shape of one TANE/FUN level.
    level = [
        (pair_partition, rhs)
        for (i, j), pair_partition in zip(
            ((i, j) for i in range(len(names)) for j in range(i + 1, len(names))),
            (left.intersect(right) for left, right in pairs),
        )
        for rhs in names
        if rhs not in (names[i], names[j])
    ]
    validate_batch_s = _best_of(repeats, lambda: validate_level(relation, level))
    validate_scalar_s = _best_of(
        repeats,
        lambda: [fd_holds_fast(relation, partition, rhs) for partition, rhs in level],
    )

    return {
        "n_rows": n_rows,
        "n_columns": len(names),
        "pairs": len(pairs),
        "level_candidates": len(level),
        "backend": get_backend().name,
        "seconds": {
            "encode": round(encode_s, 6),
            "intersect": round(intersect_s, 6),
            "refines": round(refines_s, 6),
            "g3": round(g3_s, 6),
            "validate_level": round(validate_batch_s, 6),
            "validate_scalar": round(validate_scalar_s, 6),
        },
        "headline_intersect_refines": round(intersect_s + refines_s, 6),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="current",
        help="run label merged into the output JSON (e.g. seed, columnar)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_partitions.json"),
        help="path of the JSON trajectory file",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--backend",
        default=None,
        choices=("auto", "python", "numpy"),
        help="pin the partition backend of this run's session (default: the "
        "environment's selection — numpy when importable)",
    )
    parser.add_argument(
        "--shard-count",
        type=int,
        default=None,
        help="shard count for the grouping kernel (0 auto, 1 sequential, "
        "N shards; default: the session default)",
    )
    parser.add_argument(
        "--shard-min-rows",
        type=int,
        default=None,
        help="minimum rows before the sharded path engages (0 forces it)",
    )
    args = parser.parse_args(argv)

    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    # Each run executes under its own Session so the backend pin and cache
    # budgets are explicit (and the recorded backend is exactly what ran).
    session_kwargs: dict = {"backend": args.backend}
    if args.shard_count is not None:
        session_kwargs["shard_count"] = args.shard_count
    if args.shard_min_rows is not None:
        session_kwargs["shard_min_rows"] = args.shard_min_rows
    session = Session(**session_kwargs)
    with session.activate():
        result = run_bench(_resolve_rows(scale), repeats=args.repeats)
        stats = session.kernel_stats()
    result["config_fingerprint"] = session.config.fingerprint()
    # Which grouping path the kernel actually took (counting-sort vs
    # introsort, sharded vs sequential) — makes a run's label verifiable
    # from the JSON alone.  Sharded numbers are only comparable across
    # hosts with the CPU count in hand, so it is recorded too.
    result["sort_paths"] = {
        "counting": stats.get("counting_sorts", 0),
        "introsort": stats.get("introsorts", 0),
        "sharded_groupings": stats.get("sharded_groupings", 0),
    }
    result["host_cpu_count"] = os.cpu_count() or 1
    result["shard_config"] = {
        "shard_count": session.config.shard_count,
        "shard_min_rows": session.config.shard_min_rows,
    }

    output = Path(args.output)
    data: dict = {"schema_version": 1, "runs": {}}
    if output.exists():
        try:
            data = json.loads(output.read_text())
        except json.JSONDecodeError:
            pass
    data.setdefault("runs", {})[args.label] = {"scale": scale, **result}
    output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    print(
        f"[bench_partition_kernel] scale={scale} rows={result['n_rows']} "
        f"backend={result['backend']}"
    )
    for op, seconds in result["seconds"].items():
        print(f"  {op:<10} {seconds * 1000:9.2f} ms")
    print(f"  headline (intersect+refines): {result['headline_intersect_refines'] * 1000:.2f} ms")
    print(f"  -> merged into {output} under label {args.label!r}")


if __name__ == "__main__":
    main()
