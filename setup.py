"""Setup shim for environments without PEP 660 editable-install support."""
from setuptools import find_packages, setup

setup(
    name="repro-infine",
    version="1.2.0",
    description="Reproduction of InFine (ICDE 2022): FD profiling of SPJ views",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # 3.9 is exercised in CI (annotations are PEP 563 strings throughout).
    python_requires=">=3.9",
    extras_require={
        # Optional vectorized partition backend (``pip install .[fast]``);
        # the kernel gracefully falls back to the pure-python loops when
        # numpy is absent (or when REPRO_PARTITION_BACKEND=python).
        "fast": ["numpy>=1.22"],
    },
)
