"""Differential conformance fuzzer: one workload, every engine leg, same bytes.

The repo's central invariant is that *no engine knob changes artefacts*: the
python and numpy partition backends are bit-compatible, and the sharded
grouping path (``shard_count``/``shard_min_rows``) merges shard-local groups
back into exactly the sequential emission order.  This tool makes that a
*fuzzed* invariant instead of a per-PR claim: a seed-replayable generator
produces adversarial relations (skew, constants, all-distinct runs, nulls,
long equal blocks straddling shard boundaries, empty and single-row
instances) and every registered discovery algorithm is executed on every
engine leg of the conformance grid

    {python} ∪ {numpy} × {unsharded} ∪ {shard counts 2, 7, cpu}

asserting, per seed:

* the canonical FD set of every algorithm is identical across legs;
* the full ``RunResult`` artefacts block is **byte**-identical (serialised
  with sorted keys) and the configuration-invariant
  ``artifact_fingerprint()`` agrees;
* the stripped partitions themselves (flat positions/offsets of every
  single attribute and of the full attribute combination) are identical.

Usage::

    PYTHONPATH=src python tools/fuzz_differential.py --seeds 25
    PYTHONPATH=src python tools/fuzz_differential.py --seed 17   # replay one

Every failure message names the seed, so a CI hit replays locally with
``--seed``.  Exit status is non-zero on any divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.discovery.registry import available_algorithms  # noqa: E402
from repro.relational.backend import numpy_available  # noqa: E402
from repro.relational.partition import StrippedPartition  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.session import Session  # noqa: E402

#: Row counts the generator draws from — deliberately including the empty
#: relation, the single row, and sizes below any plausible shard count (so
#: forced sharding produces empty and single-row shards).
ROW_COUNT_CHOICES = (0, 1, 2, 3, 5, 8, 13, 30, 60, 120)

#: Column shapes; each is an adversarial regime of the grouping kernel.
SHAPES = ("constant", "distinct", "skewed", "nulls", "blocks", "random")


def _column(rng: random.Random, n: int, shape: str) -> list:
    if shape == "constant":
        return ["k"] * n
    if shape == "distinct":
        return [f"v{i}" for i in range(n)]
    if shape == "skewed":
        # One dominant value: most pairs agree, a few cold stragglers.
        return ["hot" if rng.random() < 0.85 else f"cold{rng.randrange(3)}" for _ in range(n)]
    if shape == "nulls":
        return [None if rng.random() < 0.4 else f"v{rng.randrange(3)}" for _ in range(n)]
    if shape == "blocks":
        # Long equal runs, so shard boundaries cut groups in half — the
        # merge must stitch cross-shard halves back in position order.
        out: list = []
        value = 0
        while len(out) < n:
            run = min(n - len(out), rng.randrange(1, max(2, n // 2 + 1)))
            out.extend([f"b{value}"] * run)
            value += 1
        return out
    return [rng.randrange(max(1, n)) for _ in range(n)]


def generate_case(seed: int) -> tuple[tuple[str, ...], list[tuple], list[str]]:
    """The ``(attribute names, rows, column shapes)`` of one fuzz case.

    Pure function of ``seed`` — the replayability contract of the suite.
    """
    rng = random.Random(seed)
    n_rows = rng.choice(ROW_COUNT_CHOICES)
    n_columns = rng.randrange(2, 5)
    shapes = [rng.choice(SHAPES) for _ in range(n_columns)]
    columns = [_column(rng, n_rows, shape) for shape in shapes]
    names = tuple(chr(ord("a") + i) for i in range(n_columns))
    rows = [tuple(column[i] for column in columns) for i in range(n_rows)]
    return names, rows, shapes


def conformance_legs() -> list[tuple[str, dict]]:
    """The engine legs of the grid, as ``(label, Session overrides)`` pairs.

    The python leg carries forced shard knobs on purpose: they must be
    inert there.  Without numpy only that leg exists (nothing to differ
    from, but the tool still exercises the generator and the python run).
    """
    legs = [("python", {"backend": "python", "shard_count": 7, "shard_min_rows": 0})]
    if numpy_available():
        cpu = os.cpu_count() or 1
        legs.append(("numpy-unsharded", {"backend": "numpy", "shard_count": 1}))
        for count in dict.fromkeys((2, 7, cpu)):
            legs.append(
                (
                    f"numpy-sharded-{count}",
                    {"backend": "numpy", "shard_count": count, "shard_min_rows": 0},
                )
            )
    return legs


def _observe_leg(
    names: tuple[str, ...], rows: list[tuple], overrides: dict, algorithms: list[str]
) -> dict:
    """Everything one leg produces, in a directly comparable form."""
    with Session(**overrides) as session:
        relation = Relation("fuzz", names, rows)
        partitions = {}
        for attribute in names:
            partitions[attribute] = StrippedPartition.from_column(relation, attribute).flat_lists()
        partitions["*combined*"] = StrippedPartition.from_columns(relation, names).flat_lists()
        runs = {}
        for algorithm in algorithms:
            result = session.discover(relation, algorithm=algorithm)
            runs[algorithm] = {
                "fds": sorted((sorted(fd.lhs), fd.rhs) for fd in result.fds),
                "artifact_bytes": json.dumps(result.artifacts, sort_keys=True),
                "artifact_fingerprint": result.artifact_fingerprint(),
            }
    return {"partitions": partitions, "runs": runs}


def check_case(label: str, names: tuple[str, ...], rows: list[tuple]) -> list[str]:
    """Run one case over the whole grid; returns human-readable mismatches."""
    algorithms = available_algorithms()
    mismatches: list[str] = []
    reference_leg: str | None = None
    reference: dict | None = None
    for leg, overrides in conformance_legs():
        observed = _observe_leg(names, rows, overrides, algorithms)
        if reference is None:
            reference_leg, reference = leg, observed
            continue
        if observed == reference:
            continue
        for attribute, flat in observed["partitions"].items():
            if flat != reference["partitions"][attribute]:
                mismatches.append(
                    f"{label}: partition({attribute!r}) differs on leg {leg} vs {reference_leg}"
                )
        for algorithm, run in observed["runs"].items():
            for key, value in run.items():
                if value != reference["runs"][algorithm][key]:
                    mismatches.append(
                        f"{label}: {algorithm} {key} differs on leg {leg} vs {reference_leg}"
                    )
    return mismatches


def check_seed(seed: int) -> list[str]:
    """Generate and check one seed; returns mismatch descriptions (empty = ok)."""
    names, rows, shapes = generate_case(seed)
    label = f"seed {seed} (rows={len(rows)}, shapes={shapes})"
    return check_case(label, names, rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=10, help="number of seeds to sweep (0..N-1)")
    parser.add_argument("--seed", type=int, default=None, help="replay exactly one seed")
    args = parser.parse_args(argv)

    seeds = [args.seed] if args.seed is not None else list(range(args.seeds))
    legs = [leg for leg, _ in conformance_legs()]
    print(
        f"[fuzz_differential] seeds={seeds[0]}..{seeds[-1]} legs={legs} "
        f"algorithms={available_algorithms()}"
    )
    failures = 0
    for seed in seeds:
        mismatches = check_seed(seed)
        if mismatches:
            failures += 1
            for line in mismatches:
                print(f"  MISMATCH {line}")
            print(f"  replay: PYTHONPATH=src python tools/fuzz_differential.py --seed {seed}")
        else:
            print(f"  seed {seed}: conforms")
    if failures:
        print(f"[fuzz_differential] FAILED: {failures}/{len(seeds)} seeds diverged")
        return 1
    print(f"[fuzz_differential] all {len(seeds)} seeds conform")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
