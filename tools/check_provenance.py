#!/usr/bin/env python3
"""End-to-end provenance/integrity checker (the `integrity` CI job's gate).

Drives the real serving stack — no mocks — through the full
content-addressed lifecycle and asserts every robustness guarantee the
registry makes:

1. **Discovery by reference**: PUT a relation into a persistent registry,
   run the same discovery inline and by ``relation_ref``, and require
   byte-identical artefacts.
2. **Provenance chain**: every result must carry a complete provenance
   block; :func:`repro.verify_provenance` must accept it against the live
   registry (stored relation re-hashes to its address), and must still
   accept it after an atomic ``RunResult.save()``/``load()`` round-trip.
3. **Tamper detection**: a tampered config fingerprint must be rejected
   with a typed :class:`~repro.registry.ProvenanceError`.
4. **Fault-grammar retries**: with ``registry.read:error:times=1`` injected
   (the ``REPRO_FAULTS`` grammar), a by-reference job must classify the
   fault as *infra*, retry, and complete on attempt 2.
5. **Corruption quarantine**: after a bit-flip in the stored object file, a
   by-reference job must fail as *infra* with ``IntegrityError`` in the
   error string, the entry must be quarantined (moved aside, then unknown),
   and a recovery scan over a dirtied registry must remove partial writes
   and quarantine foreign files.

Exit status is non-zero on the first violated guarantee, with one line per
check on stdout.  Network-free and self-contained (temp dirs only)::

    PYTHONPATH=src python tools/check_provenance.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.registry import (  # noqa: E402
    IntegrityError,
    ProvenanceError,
    RelationRegistry,
    verify_provenance,
)
from repro.relational.relation import Relation  # noqa: E402
from repro.serve import Server  # noqa: E402
from repro.session import RunResult  # noqa: E402

_checks = 0


def ok(message: str) -> None:
    global _checks
    _checks += 1
    print(f"  ok: {message}")


def fail(message: str) -> None:
    print(f"  FAIL: {message}")
    raise SystemExit(1)


def build_relation() -> Relation:
    rows = [(i % 12, (i % 12) * 3, i % 5, f"ward-{i % 4}") for i in range(240)]
    return Relation("patient", ("subject_id", "gender", "ward", "unit"), rows)


def run_job(server: Server, payload: dict) -> RunResult:
    ticket = server.submit(payload)
    job = server.queue.get(ticket.job_id)
    if not job.wait(120):
        fail(f"job {job.job_id} did not finish")
    if job.status != "done":
        fail(f"job {job.job_id} ended {job.status}: {job.error}")
    return job.result


def ref_payload(content_hash: str) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": "ci",
        "kind": "discover",
        "relation_ref": content_hash,
        "params": {"algorithm": "tane"},
        "overrides": {},
    }


def check_discovery_and_chain(root: str) -> None:
    print("[1/5] discovery by reference + provenance chain")
    relation = build_relation()
    with Server(workers=1, executor="thread", registry=root) as server:
        ack = server.put_relation(relation)
        if not ack["created"]:
            fail("first PUT must report created=true")
        content_hash = ack["hash"]
        inline = run_job(
            server,
            {
                "schema": "repro/job-request-v1",
                "tenant": "ci",
                "kind": "discover",
                "relation": {
                    "name": relation.name,
                    "attributes": list(relation.attribute_names),
                    "rows": [list(row) for row in relation.rows],
                },
                "params": {"algorithm": "tane"},
                "overrides": {},
            },
        )
        by_ref = run_job(server, ref_payload(content_hash))
        if inline.artifact_fingerprint() != by_ref.artifact_fingerprint():
            fail("inline and by-reference artefacts differ")
        ok("inline and by-reference artefacts are byte-identical")

        for label, result in (("inline", inline), ("by-reference", by_ref)):
            block = result.provenance
            if not block:
                fail(f"{label} result carries no provenance block")
            report = verify_provenance(result, server.registry)
            if result is by_ref and not report["relation_verified"]:
                fail("by-reference provenance did not verify against the registry")
            ok(f"{label} provenance verifies (executor={block['executor']})")
        if by_ref.provenance["relation_hash"] != content_hash:
            fail("by-reference result is not stamped with the stored relation hash")
        ok("result is stamped with the stored relation's content hash")

        with tempfile.TemporaryDirectory(prefix="repro-ci-artefact-") as artefacts:
            path = by_ref.save(Path(artefacts) / "run.json")
            reloaded = RunResult.load(path)
            report = verify_provenance(reloaded, server.registry)
            if not report["relation_verified"]:
                fail("provenance chain broke across save/load")
        ok("provenance chain survives an atomic save/load round-trip")

        tampered = json.loads(json.dumps(by_ref.payload))
        tampered["provenance"]["config_fingerprint"] = "0" * 12
        try:
            verify_provenance(tampered, server.registry)
        except ProvenanceError:
            ok("tampered config fingerprint is rejected with ProvenanceError")
        else:
            fail("tampered config fingerprint was accepted")


def check_fault_retry(root: str) -> None:
    print("[2/5] registry.read fault is retried as an infra failure")
    relation = build_relation()
    with Server(
        workers=1,
        executor="thread",
        registry=root,
        max_attempts=3,
        faults="registry.read:error:times=1",
    ) as server:
        content_hash = server.put_relation(relation)["hash"]
        server.registry._cache.clear()  # force the next get to hit the disk
        ticket = server.submit(ref_payload(content_hash))
        job = server.queue.get(ticket.job_id)
        if not job.wait(120):
            fail("faulted job did not finish")
        if job.status != "done":
            fail(f"faulted job ended {job.status}: {job.error}")
        if job.attempts != 2:
            fail(f"expected recovery on attempt 2, took {job.attempts}")
    ok("injected registry.read error classified infra; job recovered on attempt 2")


def check_corruption_quarantine(root: str) -> None:
    print("[3/5] corruption is detected, typed and quarantined")
    relation = build_relation()
    with Server(workers=1, executor="thread", registry=root, max_attempts=1) as server:
        content_hash = server.put_relation(relation)["hash"]
        object_path = Path(root) / "objects" / f"{content_hash}.json"
        raw = bytearray(object_path.read_bytes())
        index = raw.rindex(b'"rows"') + 20
        raw[index] ^= 0x01
        object_path.write_bytes(bytes(raw))
        server.registry._cache.clear()

        ticket = server.submit(ref_payload(content_hash))
        job = server.queue.get(ticket.job_id)
        if not job.wait(120):
            fail("corrupted job did not finish")
        if job.status != "failed":
            fail(f"job against a corrupt entry ended {job.status}, expected failed")
        if "IntegrityError" not in (job.error or ""):
            fail(f"corruption failure is not typed: {job.error!r}")
        ok("job against a corrupt entry fails with a typed IntegrityError")

        stats = server.stats()["registry"]
        if stats["quarantined"] != 1:
            fail(f"expected 1 quarantined entry, registry says {stats['quarantined']}")
        if object_path.exists():
            fail("corrupt object file was left in place")
        quarantine = list((Path(root) / "quarantine").iterdir())
        if len(quarantine) != 1:
            fail(f"expected 1 file in quarantine/, found {len(quarantine)}")
        ok("corrupt entry was moved to quarantine/")

        try:
            server.registry.get(content_hash)
        except KeyError:
            ok("quarantined hash is unknown afterwards (clients must re-PUT)")
        else:
            fail("quarantined hash still resolves")


def check_recovery_scan(root: str) -> None:
    print("[4/5] startup recovery scan cleans a dirtied registry")
    registry = RelationRegistry(root)
    registry.put(build_relation())
    objects = Path(root) / "objects"
    (objects / ".patient.123.deadbeef.tmp").write_text("partial write")
    (objects / "not-a-hash.json").write_text("{}")
    # Constructing a disk-backed registry runs the recovery scan itself.
    report = RelationRegistry(root).last_recovery
    expected = {"entries": 1, "partial_writes_removed": 1, "foreign_files_quarantined": 1}
    if report != expected:
        fail(f"recovery report {report} != {expected}")
    ok(f"recovery scan: {report}")


def check_registry_write_fault(root: str) -> None:
    print("[5/5] registry.write fault surfaces from PUT without a partial object")
    from repro.serve.faults import FaultPlan

    registry = RelationRegistry(root, faults=FaultPlan.from_spec("registry.write:error:times=1"))
    relation = build_relation()
    try:
        registry.put(relation)
    except ConnectionError:
        pass  # InjectedFault subclasses ConnectionError (infra-class)
    else:
        fail("injected registry.write error did not surface from put()")
    objects = Path(root) / "objects"
    if any(objects.glob("*.json")):
        fail("faulted PUT left a committed object behind")
    content_hash = registry.put(relation)
    if registry.get(content_hash).rows != relation.rows:
        fail("retried PUT did not round-trip")
    ok("faulted PUT commits nothing; the retry round-trips")


def main() -> None:
    checks = (
        check_discovery_and_chain,
        check_fault_retry,
        check_corruption_quarantine,
        check_recovery_scan,
        check_registry_write_fault,
    )
    for check in checks:
        with tempfile.TemporaryDirectory(prefix="repro-ci-registry-") as root:
            check(root)
    print(f"[check_provenance] all {_checks} checks passed")


if __name__ == "__main__":
    main()
