#!/usr/bin/env python3
"""Documentation link checker (the `docs` CI job's gate).

Scans the repo's Markdown documentation for `[text](target)` links and
verifies, without touching the network:

* every **relative** link resolves to an existing file or directory
  (anchors are split off first);
* every **intra-repo anchor** (`file.md#heading` or `#heading`) matches a
  heading in the target file, using GitHub's slug rules;
* `http(s)` links are *not* fetched (CI must not flake on the network) —
  they are only counted;
* a small set of **required links** exists: the README must link into
  `docs/` and `examples/`, and `docs/API.md` must link to both
  `docs/ARCHITECTURE.md` and `docs/PROTOCOL.md` (the documentation-suite
  acceptance criteria, kept green by CI).

Exit status is non-zero on any broken link, with one line per finding.

Usage::

    python tools/check_docs.py            # check the default file set
    python tools/check_docs.py FILE.md…   # check specific files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files checked when no arguments are given.
DEFAULT_FILES = ("README.md", "docs/API.md", "docs/ARCHITECTURE.md", "docs/PROTOCOL.md")

#: (source file, link target) pairs that MUST be present.
REQUIRED_LINKS = (
    ("README.md", "docs/API.md"),
    ("README.md", "docs/ARCHITECTURE.md"),
    ("README.md", "docs/PROTOCOL.md"),
    ("README.md", "examples/quickstart.py"),
    ("README.md", "examples/serve_client.py"),
    ("docs/API.md", "ARCHITECTURE.md"),
    ("docs/API.md", "PROTOCOL.md"),
)

#: Inline Markdown links: [text](target).  Images share the syntax apart
#: from the leading "!"; both resolve the same way.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, for anchor validation.
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: Fenced code blocks are stripped before link/heading extraction.
_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug of a heading (best-effort, ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    content = _FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING_RE.finditer(content):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path) -> list[str]:
    content = _FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return _LINK_RE.findall(content)


def check_file(path: Path) -> tuple[list[str], list[str]]:
    """Returns (errors, link targets seen) for one Markdown file."""
    errors: list[str] = []
    seen: list[str] = []
    for target in iter_links(path):
        seen.append(target)
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: counted, never fetched
        base, _, anchor = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
            if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
                errors.append(f"{path.relative_to(REPO_ROOT)}: link escapes repo -> {target}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                errors.append(f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}")
    return errors, seen


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [REPO_ROOT / name for name in DEFAULT_FILES]
    errors: list[str] = []
    links_by_file: dict[str, list[str]] = {}
    for path in files:
        if not path.exists():
            errors.append(f"missing documentation file: {path.relative_to(REPO_ROOT)}")
            continue
        file_errors, seen = check_file(path)
        errors.extend(file_errors)
        links_by_file[str(path.relative_to(REPO_ROOT))] = seen
        print(f"checked {path.relative_to(REPO_ROOT)}: {len(seen)} links")
    if not argv:
        for source, required in REQUIRED_LINKS:
            targets = {link.partition("#")[0] for link in links_by_file.get(source, ())}
            if required not in targets:
                errors.append(f"{source}: required link to {required} is missing")
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    print("documentation links OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
