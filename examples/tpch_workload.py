#!/usr/bin/env python3
"""Run the TPC-H slice of the paper's workload (Q2*, Q3*, Q9*, Q11*) in a session.

For every TPC-H view of Table II the script compares InFine against the
straightforward pipelines and prints a miniature version of Fig. 3/Fig. 5:
runtime per method, number of FDs, and the fraction of FDs each InFine step
retrieved.

The whole workload executes under one explicit :class:`repro.Session`, so
the engine state (partition backend, cache budgets) is pinned once and the
kernel counters printed at the end cover exactly this run — the `--kernel
-stats` accounting of the CLI, programmatically.  Swap ``backend="python"``
into the ``Session(...)`` call to measure the pure-python fallback: the
tables stay byte-identical, only the runtimes move.
"""

from repro import Session
from repro.datasets import load_database, views_for
from repro.experiments import fig3_rows, fig5_rows, render_table, run_view_experiment


def main() -> None:
    session = Session()  # env-var defaults; e.g. Session(backend="python") to pin
    catalog = load_database("tpch", scale="small")

    experiments = []
    for case in views_for("tpch"):
        print(f"running {case.key} ({case.paper_label}) ...")
        experiments.append(
            run_view_experiment(
                case, catalog, algorithms=("tane", "hyfd", "fastfds"), session=session
            )
        )

    print()
    print(render_table(fig3_rows(experiments), title="Runtime (seconds) — InFine vs. baselines"))
    print()
    print(render_table(fig5_rows(experiments), title="InFine breakdown per step"))
    print()
    for experiment in experiments:
        assert experiment.accuracy.total_accuracy == 1.0
    print("All views reproduced with accuracy 1.0 (InFine finds every FD of the view).")
    print()
    print("Kernel work of this session (backend + cache counters):")
    print(session.render_kernel_stats())


if __name__ == "__main__":
    main()
