#!/usr/bin/env python3
"""Quickstart: discover FDs on a view without computing the view's FD set from scratch.

The example builds two tiny relations, discovers their FDs, defines an SPJ
view joining them, and runs InFine to obtain every minimal FD of the view
annotated with its provenance triple.
"""

from repro import FD, InFine, Relation, StraightforwardPipeline, TANE, base, join


def build_catalog() -> dict[str, Relation]:
    """Two small relations sharing the join attribute ``customer_id``."""
    customers = Relation(
        "customers",
        ("customer_id", "name", "segment", "country"),
        [
            (1, "ada", "research", "uk"),
            (2, "grace", "navy", "us"),
            (3, "edsger", "research", "nl"),
            (4, "barbara", "academia", "us"),
            (5, "alan", "research", "uk"),
        ],
    )
    orders = Relation(
        "orders",
        ("order_id", "customer_id", "priority", "status"),
        [
            (100, 1, "high", "shipped"),
            (101, 1, "low", "open"),
            (102, 2, "high", "shipped"),
            (103, 3, "medium", "open"),
            (104, 3, "high", "shipped"),
            (105, 4, "low", "open"),
        ],
    )
    return {"customers": customers, "orders": orders}


def main() -> None:
    catalog = build_catalog()

    # 1. Classical single-table discovery on a base relation.
    customer_fds = TANE().discover(catalog["customers"])
    print("== Minimal FDs of `customers` (TANE) ==")
    for dependency in customer_fds:
        print("  ", dependency)

    # 2. Define the integrated view: customers joined with their orders.
    view = join(base("customers"), base("orders"), on="customer_id")

    # 3. Run InFine: every minimal FD of the view, each with its provenance.
    result = InFine().run(view, catalog)
    print(f"\n== {len(result)} FDs of the view, with provenance ==")
    for triple in result.triples:
        print(f"  [{triple.fd_type.value:18s}] {triple.dependency}   (holds in {triple.subquery})")

    # 4. Cross-check against the straightforward approach (full view + discovery).
    reference = StraightforwardPipeline("tane").run(view, catalog)
    assert set(result.fds.as_set()) == set(reference.fds.as_set())
    print("\nInFine found exactly the FDs a full-view discovery finds "
          f"({len(reference.fds)} FDs), without mining the full view from scratch.")
    print(f"Step breakdown: {result.count_by_step()}")


if __name__ == "__main__":
    main()
