#!/usr/bin/env python3
"""Quickstart: the `repro.Session` API on a tiny two-table catalog.

The example builds two small relations, opens a :class:`repro.Session`
(the explicit engine context owning backend choice, cache budgets and kernel
counters), and walks the four session verbs:

* ``session.discover``  — exact minimal FDs of one relation;
* ``session.validate``  — check specific FDs (with their g3 errors);
* ``session.profile``   — approximate FDs (the upstaging candidates);
* ``session.infine``    — every minimal FD of an SPJ view, with provenance.

Each verb returns a unified :class:`repro.RunResult` that serialises to
canonical JSON (``save``/``load`` round-trip byte-identically) and records
which backend and configuration produced it.
"""

import tempfile
from pathlib import Path

from repro import Relation, RunResult, Session, StraightforwardPipeline, base, join


def build_catalog() -> dict[str, Relation]:
    """Two small relations sharing the join attribute ``customer_id``."""
    customers = Relation(
        "customers",
        ("customer_id", "name", "segment", "country"),
        [
            (1, "ada", "research", "uk"),
            (2, "grace", "navy", "us"),
            (3, "edsger", "research", "nl"),
            (4, "barbara", "academia", "us"),
            (5, "alan", "research", "uk"),
        ],
    )
    orders = Relation(
        "orders",
        ("order_id", "customer_id", "priority", "status"),
        [
            (100, 1, "high", "shipped"),
            (101, 1, "low", "open"),
            (102, 2, "high", "shipped"),
            (103, 3, "medium", "open"),
            (104, 3, "high", "shipped"),
            (105, 4, "low", "open"),
        ],
    )
    return {"customers": customers, "orders": orders}


def main() -> None:
    catalog = build_catalog()

    # One explicit engine context for the whole workload.  Environment
    # variables provide the defaults; keyword overrides always win, and both
    # backends produce byte-identical artefacts.
    session = Session()
    print(f"== Session ==\n  {session!r}")

    # 1. Classical single-table discovery on a base relation.
    discovered = session.discover(catalog["customers"], algorithm="tane")
    print(f"\n== Minimal FDs of `customers` (TANE, backend={discovered.backend}) ==")
    for dependency in discovered.fds:
        print("  ", dependency)

    # 2. Validate hand-written FDs (g3 = fraction of violating rows).
    verdicts = session.validate(
        catalog["orders"], ["order_id -> status", "customer_id -> priority"]
    )
    print("\n== Validation of two candidate FDs on `orders` ==")
    for check in verdicts.artifacts["checks"]:
        lhs = ",".join(check["lhs"])
        print(f"   {lhs} -> {check['rhs']}: holds={check['holds']} g3={check['g3']:.3f}")

    # 3. Approximate FDs: the dependencies a selection/join could upstage.
    profiled = session.profile(catalog["orders"], threshold=0.4, max_lhs=1)
    print(f"\n== AFDs of `orders` (g3 <= 0.4): {len(profiled)} found ==")

    # 4. InFine on the integrated view: every minimal FD with its provenance.
    view = join(base("customers"), base("orders"), on="customer_id")
    run = session.infine(view, catalog)
    print(f"\n== {len(run)} FDs of the view, with provenance ==")
    for triple in run.artifacts["provenance"]:
        print(f"  [{triple['type']:18s}] {triple['fd']}   (holds in {triple['subquery']})")

    # RunResults are plain JSON artefacts: save/load round-trips are
    # byte-identical and record the engine configuration fingerprint.
    with tempfile.TemporaryDirectory() as tmp:
        path = run.save(Path(tmp) / "view_fds.json")
        reloaded = RunResult.load(path)
        assert reloaded.to_json() == run.to_json()
    print(f"\nRunResult round-trip OK (config fingerprint {run.config_fingerprint})")

    # 5. Cross-check against the straightforward approach (full view + discovery).
    reference = StraightforwardPipeline("tane").run(view, catalog)
    assert set(run.fds.as_set()) == set(reference.fds.as_set())
    print("InFine found exactly the FDs a full-view discovery finds "
          f"({len(reference.fds)} FDs), without mining the full view from scratch.")
    print(f"Step breakdown: {run.artifacts['count_by_step']}")
    print("\nKernel work of this session:")
    print(session.render_kernel_stats())


if __name__ == "__main__":
    main()
