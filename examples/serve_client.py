"""Submit → poll → fetch against the multi-tenant serving endpoint.

This example is fully self-contained: it boots the HTTP serving endpoint
in-process on an ephemeral port (exactly what ``python -m repro serve``
runs), then acts as a plain HTTP client against it — build a
``repro/job-request-v1`` payload with an end-to-end ``deadline_ms``,
``POST /jobs`` with client-side backoff on 429 (honouring the
``Retry-After`` hint), poll ``GET /jobs/<id>`` until the job is terminal,
and reconstruct the ``RunResult`` from the ``result`` field of the status
payload.

Against a real deployment, drop the server-bootstrap block and point
``HOST``/``PORT`` at the running endpoint.
"""

import http.client
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import parse_tenant_configs  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.serve import HttpFrontend, Server, relation_to_payload  # noqa: E402
from repro.session import RunResult  # noqa: E402


def call(host, port, method, path, body=None):
    """One JSON request/response round-trip against the endpoint."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, payload, {"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), json.loads(response.read())
    finally:
        connection.close()


def submit_with_backoff(host, port, request, max_tries=8):
    """POST /jobs, backing off on 429 as the Retry-After header asks.

    429 means the queue is full — a well-behaved client waits the hinted
    number of seconds (the server derives it from queue depth) instead of
    hammering the endpoint.  Scaled down here so the example stays snappy.
    """
    for attempt in range(1, max_tries + 1):
        status, headers, body = call(host, port, "POST", "/jobs", request)
        if status != 429:
            return status, body
        hint = int(headers.get("Retry-After", "1"))
        print(f"POST /jobs -> 429 queue full; retrying in {hint}s (attempt {attempt})")
        time.sleep(min(hint, 0.2))  # real clients: time.sleep(hint)
    raise SystemExit("queue stayed full; giving up")


def main():
    # -- server bootstrap (replace with a running `python -m repro serve`) ----
    tenant_configs = parse_tenant_configs({"clinic": {"backend": "auto"}})
    server = Server(tenant_configs=tenant_configs, workers=2, max_queue=16)
    frontend = HttpFrontend(server, port=0).start()
    host, port = frontend.address
    print(f"serving on http://{host}:{port}")

    try:
        # -- build a job request ---------------------------------------------
        relation = Relation(
            "patient",
            ("subject_id", "gender", "expire_flag"),
            [
                (249, "F", 0),
                (250, "F", 1),
                (251, "M", 0),
                (252, "M", 0),
                (250, "F", 1),
                (249, "F", 0),
            ],
        )
        request = {
            "schema": "repro/job-request-v1",
            "tenant": "clinic",
            "kind": "discover",
            "relation": relation_to_payload(relation),
            "params": {"algorithm": "tane"},
            "overrides": {},
            # End-to-end deadline (queue wait + execution): past it the job
            # turns `deadline_exceeded` instead of occupying a worker.
            "deadline_ms": 20_000,
        }

        # -- submit (with 429 backoff) ----------------------------------------
        status, ticket = submit_with_backoff(host, port, request)
        print(f"POST /jobs -> {status} ticket={ticket['job_id']} ({ticket['status']})")

        # -- poll until terminal ----------------------------------------------
        deadline = time.monotonic() + 30
        while True:
            status, _, body = call(host, port, "GET", f"/jobs/{ticket['job_id']}")
            if body["status"] in ("done", "failed", "cancelled", "deadline_exceeded"):
                break
            if time.monotonic() > deadline:
                raise SystemExit("job did not finish in time")
            time.sleep(0.05)
        print(
            f"GET /jobs/{ticket['job_id']} -> {body['status']} "
            f"(attempts={body['attempts']}, deadline_ms={body['deadline_ms']})"
        )
        if body["status"] != "done":
            raise SystemExit(f"job ended {body['status']}: {body['error']}")

        # -- fetch the RunResult ----------------------------------------------
        # The result field is a repro/run-result-v1 payload: byte-identical to
        # what the same request would produce through a bare Session.
        result = RunResult(body["result"])
        print(f"backend={result.backend} fds={len(result)}")
        for dependency in sorted(result.fds, key=lambda fd: str(fd)):
            print(f"  {dependency}")
    finally:
        frontend.stop()
        server.close()


if __name__ == "__main__":
    main()
