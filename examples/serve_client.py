"""PUT once, reference many: registry-backed jobs against the endpoint.

This example is fully self-contained: it boots the HTTP serving endpoint
in-process on an ephemeral port (exactly what ``python -m repro serve``
runs), then acts as a plain HTTP client against it —

1. ``PUT /relations`` the relation once; the server stores it by content
   hash in its crash-safe registry and returns a ``repro/relation-ref-v1``
   acknowledgement,
2. ``POST /jobs`` N times carrying only the 64-char ``relation_ref``
   instead of the inline rows (with client-side backoff on 429, honouring
   the ``Retry-After`` hint),
3. poll ``GET /jobs/<id>`` until each job is terminal and reconstruct the
   ``RunResult`` — byte-identical to an inline submission, stamped with a
   provenance block tying it back to the stored relation,

and finally prints how many payload bytes the by-reference jobs saved over
shipping the rows inline with every request.

Against a real deployment, drop the server-bootstrap block and point
``HOST``/``PORT`` at the running endpoint.
"""

import http.client
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import parse_tenant_configs  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.serve import HttpFrontend, Server, relation_to_payload  # noqa: E402
from repro.session import RunResult  # noqa: E402

N_JOBS = 5


def call(host, port, method, path, body=None):
    """One JSON request/response round-trip against the endpoint."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, payload, {"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), json.loads(response.read())
    finally:
        connection.close()


def submit_with_backoff(host, port, request, max_tries=8):
    """POST /jobs, backing off on 429 as the Retry-After header asks.

    429 means the queue is full — a well-behaved client waits the hinted
    number of seconds (the server derives it from queue depth) instead of
    hammering the endpoint.  Scaled down here so the example stays snappy.
    """
    for attempt in range(1, max_tries + 1):
        status, headers, body = call(host, port, "POST", "/jobs", request)
        if status != 429:
            return status, body
        hint = int(headers.get("Retry-After", "1"))
        print(f"POST /jobs -> 429 queue full; retrying in {hint}s (attempt {attempt})")
        time.sleep(min(hint, 0.2))  # real clients: time.sleep(hint)
    raise SystemExit("queue stayed full; giving up")


def wait_for(host, port, job_id, timeout=30.0):
    """Poll GET /jobs/<id> until the job is terminal; returns the payload."""
    deadline = time.monotonic() + timeout
    while True:
        _, _, body = call(host, port, "GET", f"/jobs/{job_id}")
        if body["status"] in ("done", "failed", "cancelled", "deadline_exceeded"):
            return body
        if time.monotonic() > deadline:
            raise SystemExit(f"job {job_id} did not finish in time")
        time.sleep(0.05)


def main():
    # -- server bootstrap (replace with a running `python -m repro serve`) ----
    tenant_configs = parse_tenant_configs({"clinic": {"backend": "auto"}})
    server = Server(tenant_configs=tenant_configs, workers=2, max_queue=16)
    frontend = HttpFrontend(server, port=0).start()
    host, port = frontend.address
    print(f"serving on http://{host}:{port}")

    try:
        # -- store the relation once ------------------------------------------
        rows = [(i % 40, (i % 40) * 2, i % 7, f"ward-{i % 5}") for i in range(400)]
        relation = Relation("patient", ("subject_id", "gender", "ward", "unit"), rows)
        relation_payload = relation_to_payload(relation)
        status, _, ack = call(host, port, "PUT", "/relations", relation_payload)
        print(f"PUT /relations -> {status} hash={ack['hash'][:12]}… created={ack['created']}")

        # -- submit N jobs carrying only the content hash ----------------------
        inline_bytes = ref_bytes = 0
        tickets = []
        for index in range(N_JOBS):
            request = {
                "schema": "repro/job-request-v1",
                "tenant": "clinic",
                "kind": "discover",
                "relation_ref": ack["hash"],
                "params": {"algorithm": "tane"},
                "overrides": {},
                "deadline_ms": 20_000,
            }
            ref_bytes += len(json.dumps(request).encode("utf-8"))
            inline_request = dict(request)
            del inline_request["relation_ref"]
            inline_request["relation"] = relation_payload
            inline_bytes += len(json.dumps(inline_request).encode("utf-8"))
            status, ticket = submit_with_backoff(host, port, request)
            print(f"POST /jobs [{index + 1}/{N_JOBS}] -> {status} ticket={ticket['job_id']}")
            tickets.append(ticket)

        # -- fetch the RunResults ----------------------------------------------
        fingerprints = set()
        for ticket in tickets:
            body = wait_for(host, port, ticket["job_id"])
            if body["status"] != "done":
                raise SystemExit(f"job {ticket['job_id']} ended {body['status']}: {body['error']}")
            result = RunResult(body["result"])
            fingerprints.add(result.artifact_fingerprint())
            provenance = result.provenance
            print(
                f"  {ticket['job_id']}: fds={len(result)} "
                f"relation_hash={provenance['relation_hash'][:12]}… "
                f"executor={provenance['executor']}"
            )
        assert len(fingerprints) == 1, "by-reference runs must be byte-identical"

        # -- the payoff --------------------------------------------------------
        saved = inline_bytes - ref_bytes
        print(
            f"payload bytes: inline x{N_JOBS} = {inline_bytes:,} B, "
            f"by reference = {ref_bytes:,} B "
            f"(saved {saved:,} B, {100.0 * saved / inline_bytes:.1f}%)"
        )
    finally:
        frontend.stop()
        server.close()


if __name__ == "__main__":
    main()
