#!/usr/bin/env python3
"""Use InFine on your own CSV files.

The script exports a small synthetic database to CSV (standing in for the
user's own exported tables), loads it back as a catalogue, declares an SPJ
view with a selection, and prints the provenance-annotated FDs of the view.
"""

import tempfile
from pathlib import Path

from repro import InFine, base, join, sel
from repro.datasets import load_database
from repro.relational import gt, load_catalog, save_catalog


def main() -> None:
    # Stand-in for "your own data": export the synthetic PTC database as CSV.
    source = load_database("ptc", scale="tiny")
    workdir = Path(tempfile.mkdtemp(prefix="infine_csv_"))
    save_catalog(source, workdir)
    print(f"wrote {len(source)} CSV files to {workdir}")

    # Load the CSV files back into a catalogue (types are inferred).
    catalog = load_catalog(workdir)

    # An SPJ view: heavy atoms joined with their molecule's label.
    view = join(
        sel(base("atom"), gt("atomic_weight", 12)),
        base("molecule"),
        on="molecule_id",
    )

    result = InFine().run(view, catalog)
    print(f"\n{len(result)} provenance-annotated FDs on the view:\n")
    for record in result.provenance.to_records():
        print(f"  [{record['type']:18s}] {record['fd']}")
    print(f"\ntiming breakdown: { {k: round(v, 4) for k, v in result.timings.as_dict().items()} }")


if __name__ == "__main__":
    main()
