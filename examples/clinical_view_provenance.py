#!/usr/bin/env python3
"""The paper's motivating scenario on the synthetic MIMIC-III-like database.

Reproduces Section II of the paper: join ``patients`` with ``admissions``,
and explain where every FD of the integrated view comes from — which FDs are
carried over from the base tables, which approximate FDs become exact because
the join drops dangling patients, which FDs follow by logical inference
through ``subject_id``, and which genuinely new join FDs had to be mined.
"""

from repro import InFine, StraightforwardPipeline, base, join
from repro.datasets import load_database
from repro.infine import FDType
from repro.metrics import view_coverage


def main() -> None:
    catalog = load_database("mimic3", scale="small")
    view = join(base("patients"), base("admissions"), on="subject_id")

    print("Base tables:")
    for name in ("patients", "admissions"):
        relation = catalog[name]
        print(f"  {name:12s} {len(relation):6d} rows, {relation.arity} attributes")
    print(f"View coverage (paper's measure): {view_coverage(view, catalog):.2f}\n")

    result = InFine().run(view, catalog)
    by_type = result.count_by_type()
    print(f"InFine discovered {len(result)} minimal FDs on patients ⋈ admissions:")
    for fd_type in FDType:
        if by_type[fd_type]:
            print(f"  {fd_type.value:20s} {by_type[fd_type]:3d} FDs")

    print("\nUpstaged FDs (approximate on the base table, exact on the view):")
    for triple in result.provenance.by_type(FDType.UPSTAGED_LEFT):
        print(f"  {triple.dependency}   first holds in {triple.subquery[:60]}...")

    print("\nA few inferred FDs (pure logical reasoning, no data access):")
    for triple in result.provenance.by_type(FDType.INFERRED)[:5]:
        print(f"  {triple.dependency}")

    print("\nJoin FDs (validated on partial join data):")
    for triple in result.provenance.by_type(FDType.JOIN)[:5]:
        print(f"  {triple.dependency}")

    reference = StraightforwardPipeline("hyfd").run(view, catalog)
    print("\nComparison with the straightforward approach (full view + HyFD):")
    print(f"  InFine pipeline time : {result.timings.view_pipeline:8.3f} s "
          f"(upstage {result.timings.upstage:.3f}, infer {result.timings.infer:.3f}, "
          f"mine {result.timings.mine:.3f})")
    print(f"  full SPJ + HyFD      : {reference.total_seconds:8.3f} s "
          f"(SPJ {reference.spj_seconds:.3f} + discovery {reference.discovery_seconds:.3f})")
    assert set(result.fds.as_set()) == set(reference.fds.as_set())
    print("  both approaches agree on the FD set — but only InFine knows each FD's lineage.")


if __name__ == "__main__":
    main()
